"""Tests for edge-list I/O."""

import io

import pytest

from repro.graph import (
    EdgeListFormatError,
    Graph,
    parse_edge_list,
    read_edge_list,
    relabel_to_integers,
    write_edge_list,
)


class TestReadEdgeList:
    def test_basic(self):
        g = parse_edge_list("1 2\n2 3\n")
        assert sorted(g.edges()) == [(1, 2), (2, 3)]

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list("# header\n\n1 2\n# mid\n3 4\n")
        assert g.m == 2

    def test_tabs_and_extra_columns(self):
        g = parse_edge_list("1\t2\tweight\n3   4\n")
        assert g.m == 2

    def test_duplicates_and_reverses_collapse(self):
        g = parse_edge_list("1 2\n2 1\n1 2\n")
        assert g.m == 1

    def test_self_loops_dropped(self):
        g = parse_edge_list("1 1\n1 2\n")
        assert g.m == 1

    def test_malformed_line_raises(self):
        with pytest.raises(EdgeListFormatError):
            parse_edge_list("1\n")

    def test_non_integer_raises(self):
        with pytest.raises(EdgeListFormatError):
            parse_edge_list("a b\n")

    def test_string_vertices(self):
        g = parse_edge_list("cat dog\ndog fox\n", as_int=False)
        assert g.has_edge("cat", "dog")
        assert g.n == 3


class TestRoundTrip:
    def test_write_then_read(self, fig1, tmp_path):
        # fig1 has string vertices; use a relabeled copy for int round trip.
        g, _ = relabel_to_integers(fig1)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="fig1 relabeled")
        back = read_edge_list(path)
        assert back == g

    def test_write_to_stream_includes_header(self):
        g = Graph([(1, 2)])
        buf = io.StringIO()
        write_edge_list(g, buf, header="hello\nworld")
        text = buf.getvalue()
        assert "# hello" in text
        assert "# world" in text
        assert "# n=2 m=1" in text
        assert "1\t2" in text


class TestRelabel:
    def test_dense_ids(self):
        g = Graph([(10, 20), (20, 99)])
        relabeled, mapping = relabel_to_integers(g)
        assert sorted(relabeled.vertices()) == [0, 1, 2]
        assert mapping == {10: 0, 20: 1, 99: 2}
        assert relabeled.has_edge(0, 1)
        assert relabeled.has_edge(1, 2)

    def test_preserves_structure(self, fig1):
        relabeled, mapping = relabel_to_integers(fig1)
        assert relabeled.n == fig1.n
        assert relabeled.m == fig1.m
        for u, v in fig1.edges():
            assert relabeled.has_edge(mapping[u], mapping[v])

    def test_isolated_vertices_kept(self):
        g = Graph([(1, 2)])
        g.add_vertex(5)
        relabeled, _ = relabel_to_integers(g)
        assert relabeled.n == 3
