"""Tests for the adjacency-list and METIS I/O formats."""

import io

import pytest

from repro.graph import (
    EdgeListFormatError,
    Graph,
    read_adjacency_list,
    read_metis,
    write_adjacency_list,
    write_metis,
)


class TestAdjacencyList:
    def test_basic(self):
        g = read_adjacency_list(io.StringIO("0 1 2\n1 0\n2 0\n"))
        assert sorted(g.edges()) == [(0, 1), (0, 2)]

    def test_isolated_vertex(self):
        g = read_adjacency_list(io.StringIO("5\n0 1\n"))
        assert 5 in g
        assert g.degree(5) == 0

    def test_self_reference_skipped(self):
        g = read_adjacency_list(io.StringIO("1 1 2\n"))
        assert g.m == 1

    def test_comments(self):
        g = read_adjacency_list(io.StringIO("# hi\n0 1\n"))
        assert g.m == 1

    def test_string_mode(self):
        g = read_adjacency_list(io.StringIO("cat dog\n"), as_int=False)
        assert g.has_edge("cat", "dog")

    def test_non_integer_raises(self):
        with pytest.raises(EdgeListFormatError):
            read_adjacency_list(io.StringIO("a b\n"))

    def test_round_trip(self, fig1, tmp_path):
        path = tmp_path / "adj.txt"
        write_adjacency_list(fig1, path)
        back = read_adjacency_list(path, as_int=False)
        assert back == fig1

    def test_round_trip_with_isolated(self):
        g = Graph([(0, 1)])
        g.add_vertex(7)
        buf = io.StringIO()
        write_adjacency_list(g, buf)
        back = read_adjacency_list(io.StringIO(buf.getvalue()))
        assert back == g


class TestMetis:
    def test_basic(self):
        text = "3 2\n2\n1 3\n2\n"  # path 0-1-2 in 1-based METIS
        g = read_metis(io.StringIO(text))
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_percent_comments(self):
        g = read_metis(io.StringIO("% comment\n2 1\n2\n1\n"))
        assert g.m == 1

    def test_empty_raises(self):
        with pytest.raises(EdgeListFormatError):
            read_metis(io.StringIO(""))

    def test_bad_header(self):
        with pytest.raises(EdgeListFormatError):
            read_metis(io.StringIO("3\n"))

    def test_vertex_count_mismatch(self):
        with pytest.raises(EdgeListFormatError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_edge_count_mismatch(self):
        with pytest.raises(EdgeListFormatError):
            read_metis(io.StringIO("2 5\n2\n1\n"))

    def test_out_of_range_vertex(self):
        with pytest.raises(EdgeListFormatError):
            read_metis(io.StringIO("2 1\n5\n1\n"))

    def test_round_trip(self, fig1, tmp_path):
        path = tmp_path / "g.metis"
        write_metis(fig1, path)
        back = read_metis(path)
        assert back.n == fig1.n
        assert back.m == fig1.m
        assert back.degree_sequence() == fig1.degree_sequence()
