"""Tests for degree ordering, DAG orientation and degeneracy ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    OrientedGraph,
    degeneracy_ordering,
    erdos_renyi,
    precedes,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=50,
)


class TestDegreeOrdering:
    def test_lower_degree_precedes(self):
        g = Graph([(1, 2), (1, 3)])  # d(1)=2, d(2)=d(3)=1
        assert precedes(g, 2, 1)
        assert not precedes(g, 1, 2)

    def test_tie_broken_by_id(self):
        g = Graph([(1, 2), (3, 4)])  # all degree 1
        assert precedes(g, 1, 2)
        assert precedes(g, 2, 3)

    def test_paper_example_e_precedes_f(self, fig1):
        """§II: e ≺ f because d(e) = d(f) and e has the smaller id."""
        assert fig1.degree("e") == fig1.degree("f")
        assert precedes(fig1, "e", "f")

    def test_total_order(self, fig1):
        vs = list(fig1.vertices())
        for u in vs:
            for v in vs:
                if u != v:
                    assert precedes(fig1, u, v) != precedes(fig1, v, u)


class TestOrientedGraph:
    def test_every_edge_oriented_once(self, fig1):
        dag = OrientedGraph(fig1)
        directed = dag.directed_edges()
        assert len(directed) == fig1.m
        undirected = {tuple(sorted(e)) for e in directed}
        assert undirected == set(fig1.edges())

    def test_orientation_follows_order(self, fig1):
        dag = OrientedGraph(fig1)
        for u, v in dag.directed_edges():
            assert precedes(fig1, u, v)

    def test_acyclic(self):
        g = erdos_renyi(30, 0.2, seed=3)
        dag = OrientedGraph(g)
        # Kahn's algorithm: a DAG fully drains.
        indeg = {u: 0 for u in dag.vertices()}
        for _, v in dag.directed_edges():
            indeg[v] += 1
        frontier = [u for u, d in indeg.items() if d == 0]
        drained = 0
        while frontier:
            u = frontier.pop()
            drained += 1
            for v in dag.out_neighbors(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    frontier.append(v)
        assert drained == g.n

    def test_out_degree_bounded_by_degeneracy_plus_ties(self):
        """Out-degrees under the degree ordering stay small on sparse graphs."""
        g = erdos_renyi(60, 0.08, seed=5)
        dag = OrientedGraph(g)
        assert dag.max_out_degree() <= g.max_degree()
        assert sum(dag.out_degree(u) for u in dag.vertices()) == g.m

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_orientation_is_partition(self, edges):
        g = Graph(edges)
        dag = OrientedGraph(g)
        assert sorted(tuple(sorted(e)) for e in dag.directed_edges()) == sorted(
            g.edges()
        )


class TestDegeneracyOrdering:
    def test_empty(self):
        order, delta = degeneracy_ordering(Graph())
        assert order == []
        assert delta == 0

    def test_tree_degeneracy_one(self):
        g = Graph([(0, 1), (1, 2), (1, 3), (3, 4)])
        _, delta = degeneracy_ordering(g)
        assert delta == 1

    def test_clique_degeneracy(self, k5):
        _, delta = degeneracy_ordering(k5)
        assert delta == 4

    def test_cycle_degeneracy_two(self):
        g = Graph([(i, (i + 1) % 6) for i in range(6)])
        _, delta = degeneracy_ordering(g)
        assert delta == 2

    def test_order_is_permutation(self, fig1):
        order, _ = degeneracy_ordering(fig1)
        assert sorted(order) == sorted(fig1.vertices())

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_each_vertex_has_few_later_neighbors(self, edges):
        """Defining property: every vertex has <= δ neighbors later in order."""
        g = Graph(edges)
        order, delta = degeneracy_ordering(g)
        position = {u: i for i, u in enumerate(order)}
        for u in g.vertices():
            later = sum(1 for v in g.neighbors(u) if position[v] > position[u])
            assert later <= delta
