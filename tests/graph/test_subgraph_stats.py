"""Tests for subgraph sampling, ego-network helpers and graph statistics."""

import pytest

from repro.graph import (
    Graph,
    closed_ego_network,
    ego_network,
    ego_network_vertices,
    erdos_renyi,
    global_clustering_coefficient,
    graph_stats,
    random_edge_subgraph,
    random_vertex_subgraph,
    scalability_fractions,
)


class TestSampling:
    def test_edge_fraction_counts(self):
        g = erdos_renyi(60, 0.1, seed=1)
        half = random_edge_subgraph(g, 0.5, seed=2)
        assert half.m == round(0.5 * g.m)
        full = random_edge_subgraph(g, 1.0, seed=2)
        assert full.m == g.m

    def test_edge_sample_is_subset(self):
        g = erdos_renyi(40, 0.15, seed=3)
        sub = random_edge_subgraph(g, 0.4, seed=4)
        for u, v in sub.edges():
            assert g.has_edge(u, v)

    def test_vertex_fraction_counts(self):
        g = erdos_renyi(50, 0.1, seed=5)
        sub = random_vertex_subgraph(g, 0.6, seed=6)
        assert sub.n == round(0.6 * g.n)

    def test_vertex_sample_induced(self):
        g = erdos_renyi(30, 0.3, seed=7)
        sub = random_vertex_subgraph(g, 0.5, seed=8)
        for u in sub.vertices():
            for v in sub.vertices():
                if u < v:
                    assert sub.has_edge(u, v) == g.has_edge(u, v)

    def test_fraction_validation(self):
        g = Graph([(1, 2)])
        with pytest.raises(ValueError):
            random_edge_subgraph(g, 1.5)
        with pytest.raises(ValueError):
            random_vertex_subgraph(g, -0.1)

    def test_deterministic(self):
        g = erdos_renyi(40, 0.2, seed=9)
        assert random_edge_subgraph(g, 0.5, seed=1) == random_edge_subgraph(
            g, 0.5, seed=1
        )

    def test_scalability_fractions(self):
        assert scalability_fractions() == [0.2, 0.4, 0.6, 0.8, 1.0]


class TestEgoNetworks:
    def test_fig1_fg(self, fig1):
        """Example 1: ego-network of (f, g)."""
        assert ego_network_vertices(fig1, "f", "g") == {"d", "e", "h", "i"}
        ego = ego_network(fig1, "f", "g")
        assert sorted(ego.edges()) == [("d", "e"), ("h", "i")]

    def test_closed_ego_includes_endpoints(self, fig1):
        closed = closed_ego_network(fig1, "f", "g")
        assert "f" in closed
        assert "g" in closed
        assert closed.has_edge("f", "g")
        assert closed.has_edge("f", "d")

    def test_empty_ego(self):
        g = Graph([(1, 2)])
        assert ego_network(g, 1, 2).n == 0


class TestStats:
    def test_empty(self):
        s = graph_stats(Graph())
        assert s.n == s.m == s.d_max == s.degeneracy == 0

    def test_fig1_stats(self, fig1):
        s = graph_stats(fig1)
        assert s.n == 16
        assert s.m == 40
        assert s.d_max == fig1.max_degree()
        # {j,k,u,v,p,q} is a 6-clique, so the degeneracy is exactly 5.
        assert s.degeneracy == 5
        assert s.arboricity_lower <= s.arboricity_upper
        assert s.components == 1
        assert s.as_row() == (16, 40, s.d_max, 5)

    def test_clique_stats(self, k5):
        s = graph_stats(k5)
        assert s.degeneracy == 4
        assert s.average_degree == 4.0

    def test_clustering_triangle(self, triangle):
        assert global_clustering_coefficient(triangle) == 1.0

    def test_clustering_path(self, path4):
        assert global_clustering_coefficient(path4) == 0.0

    def test_clustering_empty(self):
        assert global_clustering_coefficient(Graph()) == 0.0
