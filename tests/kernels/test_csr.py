"""Unit tests for the interning table and the CSR snapshot."""

import gc

import pytest

from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.kernels.csr import CSRGraph, _SNAPSHOT_CACHE, snapshot_csr
from repro.kernels.dispatch import (
    KERNEL_MODES,
    kernel_mode,
    kernels_enabled,
    set_kernel_mode,
    use_kernels,
)
from repro.kernels.intern import VertexInterner


class TestVertexInterner:
    def test_round_trip(self):
        labels = ["b", "a", "c"]
        interner = VertexInterner(labels)
        assert len(interner) == 3
        for i, label in enumerate(labels):
            assert interner.intern(label) == i
            assert interner.label(i) == label

    def test_many_and_views(self):
        interner = VertexInterner([10, 20, 30])
        assert interner.intern_many([30, 10]) == [2, 0]
        assert interner.labels_of([1, 2]) == [20, 30]
        assert interner.labels == [10, 20, 30]
        assert interner.ids == {10: 0, 20: 1, 30: 2}

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError):
            VertexInterner(["x", "y", "x"])

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            VertexInterner(["a"]).intern("zzz")


class TestCSRGraph:
    def test_degree_rank_interning(self):
        # ids must be assigned in (degree, label) order -- the paper's
        # total order, so integer comparison of ids IS the ordering.
        g = Graph([(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)])
        csr = CSRGraph.from_graph(g)
        ranked = sorted(g.vertices(), key=lambda u: (g.degree(u), u))
        assert [csr.label(i) for i in range(csr.n)] == ranked

    def test_rows_sorted_and_complete(self):
        g = erdos_renyi(60, 0.15, seed=11)
        csr = CSRGraph.from_graph(g)
        assert csr.n == g.n and csr.m == g.m
        for u in range(csr.n):
            row = list(csr.neighbor_ids(u))
            assert row == sorted(row)
            labels = {csr.label(v) for v in row}
            assert labels == g.neighbors(csr.label(u))

    def test_out_neighbors_are_higher_ranked(self):
        g = erdos_renyi(50, 0.2, seed=5)
        csr = CSRGraph.from_graph(g)
        for u in range(csr.n):
            outs = list(csr.out_neighbor_ids(u))
            assert all(v > u for v in outs)
            ins = [v for v in csr.neighbor_ids(u) if v < u]
            assert len(ins) + len(outs) == csr.degree(u)

    def test_ship_round_trip(self):
        g = erdos_renyi(40, 0.2, seed=2)
        csr = CSRGraph.from_graph(g)
        clone = CSRGraph.from_arrays(*csr.ship())
        assert clone.n == csr.n and clone.m == csr.m
        assert list(clone.offsets) == list(csr.offsets)
        assert list(clone.neighbors) == list(csr.neighbors)
        assert list(clone.dag_start) == list(csr.dag_start)
        assert clone.interner.labels == csr.interner.labels

    def test_bitset_layer(self):
        g = erdos_renyi(40, 0.25, seed=3)
        csr = CSRGraph.from_graph(g)
        assert not csr.bits_built
        adj = csr.adj_bits
        assert csr.bits_built
        for u in range(csr.n):
            members = set()
            bits = adj[u]
            while bits:
                low = bits & -bits
                members.add(low.bit_length() - 1)
                bits ^= low
            assert members == set(csr.neighbor_ids(u))
            assert csr.out_bits[u] == (adj[u] >> (u + 1)) << (u + 1)

    def test_canonical_label_edge_recompares_labels(self):
        # id order is degree order, which can invert label order.
        g = Graph([(5, 1), (5, 2), (5, 3), (1, 2)])
        csr = CSRGraph.from_graph(g)
        a, b = csr.intern(5), csr.intern(1)
        assert csr.canonical_label_edge(a, b) == (1, 5)
        assert csr.canonical_label_edge(b, a) == (1, 5)

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.n == 0 and csr.m == 0
        assert csr.bits_built  # vacuously
        assert csr.max_degree() == 0
        assert csr.directed_edge_ids() == []


class TestSnapshotCache:
    def test_cache_hit_until_mutation(self):
        g = erdos_renyi(30, 0.2, seed=1)
        first = snapshot_csr(g)
        assert snapshot_csr(g) is first
        g.add_edge(0, 29) if not g.has_edge(0, 29) else g.remove_edge(0, 29)
        second = snapshot_csr(g)
        assert second is not first
        assert snapshot_csr(g) is second

    def test_every_mutation_kind_invalidates(self):
        g = Graph([(0, 1), (1, 2)])
        for mutate in (
            lambda: g.add_vertex(99),
            lambda: g.add_edge(0, 2),
            lambda: g.remove_edge(0, 2),
            lambda: g.remove_vertex(99),
        ):
            before = snapshot_csr(g)
            revision = g.revision
            mutate()
            assert g.revision > revision
            assert snapshot_csr(g) is not before

    def test_cache_evicts_on_gc(self):
        g = Graph([(0, 1)])
        snapshot_csr(g)
        key = id(g)
        assert key in _SNAPSHOT_CACHE
        del g
        gc.collect()
        assert key not in _SNAPSHOT_CACHE

    def test_snapshot_matches_rebuild(self):
        g = erdos_renyi(30, 0.2, seed=4)
        cached = snapshot_csr(g)
        fresh = CSRGraph.from_graph(g)
        assert list(cached.neighbors) == list(fresh.neighbors)


class TestDispatch:
    def test_default_is_csr(self, monkeypatch):
        monkeypatch.delenv("ESD_KERNELS", raising=False)
        set_kernel_mode(None)
        assert kernel_mode() == "csr"
        assert kernels_enabled()

    @pytest.mark.parametrize("value", ["set", "off", "0", "false", "none", "no"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("ESD_KERNELS", value)
        set_kernel_mode(None)
        assert kernel_mode() == "set"
        assert not kernels_enabled()

    def test_unknown_env_falls_back_to_csr(self, monkeypatch):
        monkeypatch.setenv("ESD_KERNELS", "turbo-mode")
        set_kernel_mode(None)
        assert kernel_mode() == "csr"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("ESD_KERNELS", "set")
        set_kernel_mode("csr")
        try:
            assert kernel_mode() == "csr"
        finally:
            set_kernel_mode(None)

    def test_context_manager_restores(self):
        set_kernel_mode(None)
        before = kernel_mode()
        with use_kernels("set"):
            assert kernel_mode() == "set"
            with use_kernels("csr"):
                assert kernel_mode() == "csr"
            assert kernel_mode() == "set"
        assert kernel_mode() == before

    def test_modes_constant(self):
        assert set(KERNEL_MODES) == {"csr", "set"}


class TestSnapshotPatchPath:
    """Small revision deltas patch the cached CSR; large ones rebuild."""

    def _counters(self):
        from repro.kernels.counters import KERNEL_COUNTERS

        return KERNEL_COUNTERS

    def test_small_delta_patches_instead_of_rebuilding(self):
        g = erdos_renyi(40, 0.15, seed=6)
        snapshot_csr(g)
        counters = self._counters()
        patches, builds = counters.csr_patches, counters.csr_builds
        g.add_edge(0, 39) if not g.has_edge(0, 39) else g.remove_edge(0, 39)
        g.add_vertex(999)
        patched = snapshot_csr(g)
        assert counters.csr_patches == patches + 1
        assert counters.csr_builds == builds
        fresh = CSRGraph.from_graph(g)
        assert list(patched.offsets) == list(fresh.offsets)
        assert list(patched.neighbors) == list(fresh.neighbors)
        assert list(patched.dag_start) == list(fresh.dag_start)
        assert patched.interner.labels == fresh.interner.labels

    def test_patched_snapshot_is_cached(self):
        g = erdos_renyi(30, 0.2, seed=2)
        snapshot_csr(g)
        g.add_edge(0, 29) if not g.has_edge(0, 29) else g.remove_edge(0, 29)
        patched = snapshot_csr(g)
        assert snapshot_csr(g) is patched

    def test_delta_beyond_patch_limit_rebuilds(self):
        from repro.kernels.csr import PATCH_OPS_LIMIT

        g = erdos_renyi(30, 0.1, seed=3)
        snapshot_csr(g)
        counters = self._counters()
        patches, builds = counters.csr_patches, counters.csr_builds
        for i in range(PATCH_OPS_LIMIT + 1):
            g.add_vertex(10_000 + i)
        snapshot_csr(g)
        assert counters.csr_patches == patches
        assert counters.csr_builds == builds + 1

    def test_rapid_mutation_past_changelog_limit_rebuilds(self):
        """The graph's changelog is bounded; outrunning it forces a
        rebuild rather than serving a wrong patch."""
        from repro.graph.graph import CHANGELOG_LIMIT

        g = erdos_renyi(30, 0.1, seed=5)
        snapshot_csr(g)
        counters = self._counters()
        patches, builds = counters.csr_patches, counters.csr_builds
        for i in range(CHANGELOG_LIMIT + 8):
            g.add_vertex(20_000 + i)
            g.add_edge(20_000 + i, i % 30)
        assert g.changes_since(g.revision - 2 * (CHANGELOG_LIMIT + 8)) is None
        rebuilt = snapshot_csr(g)
        assert counters.csr_patches == patches
        assert counters.csr_builds == builds + 1
        fresh = CSRGraph.from_graph(g)
        assert list(rebuilt.neighbors) == list(fresh.neighbors)

    def test_interleaved_patch_chain_stays_exact(self):
        """Many small patch steps never drift from a cold rebuild."""
        import random as _random

        g = erdos_renyi(25, 0.2, seed=9)
        rng = _random.Random(13)
        snapshot_csr(g)
        for _ in range(30):
            u, v = rng.sample(sorted(g.vertices()), 2)
            if g.has_edge(u, v):
                g.remove_edge(u, v)
            else:
                g.add_edge(u, v)
            patched = snapshot_csr(g)
            fresh = CSRGraph.from_graph(g)
            assert list(patched.offsets) == list(fresh.offsets)
            assert list(patched.neighbors) == list(fresh.neighbors)
            assert patched.interner.labels == fresh.interner.labels


class TestFromEdgelist:
    """``from_edgelist`` (the snapshot-install path) ≡ ``from_graph``."""

    def test_matches_from_graph(self):
        g = erdos_renyi(35, 0.15, seed=8)
        a = CSRGraph.from_graph(g)
        b = CSRGraph.from_edgelist(sorted(g.vertices()), sorted(g.edges()))
        assert list(a.offsets) == list(b.offsets)
        assert list(a.neighbors) == list(b.neighbors)
        assert list(a.dag_start) == list(b.dag_start)
        assert a.interner.labels == b.interner.labels

    def test_isolated_vertices_keep_slots(self):
        g = Graph([(0, 1), (1, 2)])
        g.add_vertex(7)
        g.add_vertex(8)
        a = CSRGraph.from_graph(g)
        b = CSRGraph.from_edgelist(sorted(g.vertices()), sorted(g.edges()))
        assert b.n == 5 and b.m == 2
        assert list(a.offsets) == list(b.offsets)
        assert a.interner.labels == b.interner.labels

    def test_csr_from_state_round_trip(self):
        from repro.core.maintenance import DynamicESDIndex
        from repro.persistence.snapshot import csr_from_state

        g = erdos_renyi(30, 0.2, seed=10)
        g.add_vertex(500)  # exported state must carry the isolate too
        state = DynamicESDIndex(g).export_state()
        restored = csr_from_state(state)
        direct = CSRGraph.from_graph(g)
        assert list(restored.offsets) == list(direct.offsets)
        assert list(restored.neighbors) == list(direct.neighbors)
        assert restored.interner.labels == direct.interner.labels
