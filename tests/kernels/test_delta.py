"""Unit tests for the delta-CSR maintenance kernel.

Every bit-level query (``common_mask``, ``ego_pairs``, ``flood_groups``)
is checked against a brute-force recomputation on the label graph, so
the kernel's id-space arithmetic can never silently drift from the
adjacency it claims to mirror.
"""

import random

import pytest

from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.kernels.csr import CSRGraph
from repro.kernels.delta import MaintenanceKernel


@pytest.fixture
def graph():
    return erdos_renyi(30, 0.2, seed=5)


@pytest.fixture
def kernel(graph):
    return MaintenanceKernel.from_graph(graph)


def brute_adjacency(kernel):
    """Rebuild id-space adjacency bitsets from the kernel's own rows."""
    return {i: kernel.adj[i] for i in range(len(kernel.labels))}


def masks_to_label_sets(kernel, masks):
    return sorted(
        tuple(sorted(kernel.labels_of_mask(mask))) for mask in masks
    )


class TestConstruction:
    def test_from_graph_mirrors_adjacency(self, graph, kernel):
        for u in graph.vertices():
            iu = kernel.ids[u]
            got = {kernel.labels[i] for i in kernel.iter_bits(kernel.adj[iu])}
            assert got == set(graph.neighbors(u))

    def test_from_csr_equivalent_to_from_graph(self, graph, kernel):
        csr = CSRGraph.from_graph(graph)
        csr.ensure_bits()
        adopted = MaintenanceKernel.from_csr(csr, graph.revision)
        # Id assignment differs (arrival order vs degree rank), so
        # compare the label-level adjacency, not raw rows.
        for u in graph.vertices():
            a = {
                kernel.labels[i]
                for i in kernel.iter_bits(kernel.adj[kernel.ids[u]])
            }
            b = {
                adopted.labels[i]
                for i in adopted.iter_bits(adopted.adj[adopted.ids[u]])
            }
            assert a == b
        assert adopted.revision == graph.revision

    def test_intern_is_idempotent(self, kernel):
        fresh = kernel.intern("zz")
        assert kernel.intern("zz") == fresh
        assert kernel.labels[fresh] == "zz"
        assert kernel.adj[fresh] == 0

    def test_prepare_bulk_interns(self, kernel):
        before = len(kernel.labels)
        kernel.prepare(["a1", "a2", "a3", "a1"])
        assert len(kernel.labels) == before + 3
        assert all(label in kernel.ids for label in ("a1", "a2", "a3"))


class TestMutation:
    def test_note_insert_flips_both_rows(self, graph, kernel):
        rev = graph.revision + 1
        iu, iv = kernel.note_insert(900, 901, rev)
        assert kernel.adj[iu] >> iv & 1
        assert kernel.adj[iv] >> iu & 1
        assert kernel.revision == rev

    def test_note_delete_clears_both_rows(self, graph, kernel):
        u, v = next(iter(graph.edge_list()))
        rev = graph.revision + 1
        iu, iv = kernel.note_delete(u, v, rev)
        assert not kernel.adj[iu] >> iv & 1
        assert not kernel.adj[iv] >> iu & 1
        assert kernel.revision == rev

    def test_note_delete_unknown_label_raises(self, kernel):
        with pytest.raises(KeyError):
            kernel.note_delete("nope-a", "nope-b", 99)

    def test_note_remove_vertex_scrubs_every_row(self, graph, kernel):
        victim = max(graph.vertices(), key=lambda u: len(graph.neighbors(u)))
        iv = kernel.ids[victim]
        kernel.note_remove_vertex(victim, graph.revision + 1)
        assert victim not in kernel.ids
        assert kernel.adj[iv] == 0
        assert all(not adj >> iv & 1 for adj in kernel.adj)

    def test_dead_slots_trigger_bloat_after_threshold(self, kernel):
        assert not kernel.bloated()
        rev = kernel.revision
        # Grow then kill enough vertices that dead slots dominate.
        doomed = [f"tmp{i}" for i in range(80)]
        for label in doomed:
            rev += 1
            kernel.note_add_vertex(label, rev)
        assert not kernel.bloated()
        for label in doomed:
            rev += 1
            kernel.note_remove_vertex(label, rev)
        assert kernel.bloated()


class TestQueries:
    def test_common_mask_matches_set_intersection(self, graph, kernel):
        for u, v in list(graph.edge_list())[:40]:
            common = kernel.common_mask(kernel.ids[u], kernel.ids[v])
            got = {kernel.labels[i] for i in kernel.common_ids(common)}
            assert got == graph.neighbors(u) & graph.neighbors(v)

    def test_common_ids_sorted_ascending(self, graph, kernel):
        u, v = max(
            graph.edge_list(),
            key=lambda e: len(graph.neighbors(e[0]) & graph.neighbors(e[1])),
        )
        ids = kernel.common_ids(kernel.common_mask(kernel.ids[u], kernel.ids[v]))
        assert ids == sorted(ids)

    def test_ego_pairs_matches_brute_force(self, graph, kernel):
        checked = 0
        for u, v in graph.edge_list():
            common_labels = graph.neighbors(u) & graph.neighbors(v)
            if len(common_labels) < 2:
                continue
            mask = kernel.common_mask(kernel.ids[u], kernel.ids[v])
            got = {
                frozenset((kernel.labels[a], kernel.labels[b]))
                for a, b in kernel.ego_pairs(mask)
            }
            want = {
                frozenset((a, b))
                for a in common_labels
                for b in common_labels
                if a < b and b in graph.neighbors(a)
            }
            assert got == want
            checked += 1
        assert checked > 0, "fixture graph produced no ego with >= 2 members"

    def test_ego_pairs_yields_each_pair_once(self, kernel):
        triangle_mask = 0
        for label in ("t1", "t2", "t3"):
            kernel.note_add_vertex(label, kernel.revision + 1)
        for a, b in (("t1", "t2"), ("t2", "t3"), ("t1", "t3")):
            kernel.note_insert(a, b, kernel.revision + 1)
        for label in ("t1", "t2", "t3"):
            triangle_mask |= 1 << kernel.ids[label]
        pairs = kernel.ego_pairs(triangle_mask)
        assert len(pairs) == 3
        assert len({frozenset(p) for p in pairs}) == 3

    def test_flood_groups_matches_component_brute_force(self, graph, kernel):
        rng = random.Random(3)
        for u, v in graph.edge_list():
            common_labels = graph.neighbors(u) & graph.neighbors(v)
            if not common_labels:
                continue
            mask = kernel.common_mask(kernel.ids[u], kernel.ids[v])
            groups = kernel.flood_groups(mask)
            # Union of the groups is the whole ego, and groups are disjoint.
            union = 0
            for g in groups:
                assert union & g == 0
                union |= g
            assert union == mask
            got = masks_to_label_sets(kernel, groups)
            want = sorted(
                tuple(sorted(comp))
                for comp in _components_within(graph, common_labels)
            )
            assert got == want
        # Degenerate inputs.
        assert kernel.flood_groups(0) == []
        lone = 1 << kernel.ids[rng.choice(sorted(graph.vertices()))]
        assert kernel.flood_groups(lone) == [lone]

    def test_labels_of_mask_roundtrip(self, graph, kernel):
        some = sorted(graph.vertices())[:7]
        mask = 0
        for label in some:
            mask |= 1 << kernel.ids[label]
        assert sorted(kernel.labels_of_mask(mask)) == sorted(some)


def _components_within(graph, members):
    """Connected components of the subgraph induced by ``members``."""
    members = set(members)
    seen = set()
    comps = []
    for start in members:
        if start in seen:
            continue
        comp = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in graph.neighbors(node) & members:
                if nxt not in comp:
                    comp.add(nxt)
                    frontier.append(nxt)
        seen |= comp
        comps.append(comp)
    return comps


class TestMutateThenQuery:
    def test_queries_track_random_mutations(self):
        """Interleave mutations with brute-force-checked queries."""
        graph = erdos_renyi(20, 0.25, seed=9)
        kernel = MaintenanceKernel.from_graph(graph)
        rng = random.Random(41)
        rev = graph.revision
        for step in range(120):
            rev += 1
            roll = rng.random()
            vertices = sorted(graph.vertices())
            if roll < 0.45 and graph.m > 5:
                u, v = rng.choice(sorted(graph.edge_list()))
                graph.remove_edge(u, v)
                kernel.note_delete(u, v, rev)
            elif roll < 0.9:
                u, v = rng.sample(vertices, 2)
                if graph.has_edge(u, v):
                    continue
                graph.add_edge(u, v)
                kernel.note_insert(u, v, rev)
            else:
                label = 1000 + step
                graph.add_vertex(label)
                kernel.note_add_vertex(label, rev)
            rev = graph.revision
        for u in graph.vertices():
            got = {
                kernel.labels[i]
                for i in kernel.iter_bits(kernel.adj[kernel.ids[u]])
            }
            assert got == set(graph.neighbors(u)), u
