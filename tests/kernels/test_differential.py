"""Property-based differential test: CSR kernels ≡ set-based reference.

Same shape as the persistence harness (``tests/persistence/harness.py``):
every trial derives from one integer seed, failures report a
reproduction, and a delta-debugging shrinker minimizes the edge list
before the test fails.  The property here is the kernel layer's whole
contract -- for any graph, every query answered through the CSR route
must be **bit-identical** to the set-based route:

* triangle and 4-clique enumeration (as canonical vertex sets),
* per-edge ego-network component-size multisets,
* structural diversity scores for several ``τ``,
* the four index builders (class-by-class),
* ``topk_online`` results *and* search statistics for several ``(k, τ)``.

Vertices are string labels (``"v007"``) so every trial also round-trips
the interning boundary; labels sort like their indices, so the paper's
total order is unaffected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cliques.kclique import iter_four_cliques
from repro.cliques.triangles import count_triangles, iter_triangles
from repro.core.build import (
    build_index_basic,
    build_index_bitset,
    build_index_fast,
    build_index_fast_with_components,
)
from repro.core.diversity import (
    all_edge_structural_diversities,
    all_ego_component_sizes,
)
from repro.core.online import topk_online
from repro.graph.graph import Graph
from repro.kernels.dispatch import use_kernels

LabelEdge = Tuple[str, str]

#: ``(k, τ)`` pairs every trial queries in both modes.
QUERY_PAIRS = ((1, 1), (5, 1), (10, 2), (3, 3))

TAUS = (1, 2, 3)

NUM_TRIALS = 25


@dataclass
class Case:
    """One reproducible trial: a string-labeled edge list."""

    seed: int
    edges: List[LabelEdge]

    def describe(self) -> str:
        return f"seed={self.seed} edges={self.edges!r}"


def generate_case(seed: int, *, max_n: int = 22) -> Case:
    """Derive a random string-labeled graph deterministically from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(4, max_n)
    p = rng.uniform(0.08, 0.5)
    edges: List[LabelEdge] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.append((f"v{i:03d}", f"v{j:03d}"))
    return Case(seed=seed, edges=edges)


def _observe(graph: Graph) -> Dict[str, object]:
    """Every kernel-routed answer for ``graph``, under the active mode.

    Dicts keep their insertion order so the comparison below also pins
    iteration-order equivalence, not just value equivalence.
    """
    obs: Dict[str, object] = {
        "triangles": sorted(
            tuple(sorted(t)) for t in iter_triangles(graph)
        ),
        "triangle_count": count_triangles(graph),
        "four_cliques": sorted(
            tuple(sorted(c)) for c in iter_four_cliques(graph)
        ),
        "ego_sizes": {
            edge: sorted(sizes)
            for edge, sizes in all_ego_component_sizes(graph).items()
        },
    }
    for tau in TAUS:
        obs[f"diversity_tau{tau}"] = all_edge_structural_diversities(
            graph, tau
        )
    for name, builder in (
        ("basic", build_index_basic),
        ("fast", build_index_fast),
        ("bitset", build_index_bitset),
    ):
        index = builder(graph)
        obs[f"index_{name}"] = {
            c: index.class_list(c) for c in index.size_classes
        }
    _index, components = build_index_fast_with_components(graph)
    obs["m_structures"] = {
        edge: sorted(m.component_sizes()) for edge, m in components.items()
    }
    for k, tau in QUERY_PAIRS:
        results, stats = topk_online(graph, k, tau, with_stats=True)
        obs[f"topk_{k}_{tau}"] = results
        obs[f"stats_{k}_{tau}"] = (
            stats.evaluated,
            stats.pops,
            stats.bound_evaluations,
            stats.results,
        )
    return obs


def check_case(case: Case) -> Optional[str]:
    """Run one trial; return ``None`` on success or a failure description."""
    graph = Graph(case.edges)
    with use_kernels("csr"):
        csr_obs = _observe(graph)
    with use_kernels("set"):
        set_obs = _observe(graph)
    for key, csr_value in csr_obs.items():
        set_value = set_obs[key]
        if csr_value != set_value:
            return f"{key} diverged: csr={csr_value!r} set={set_value!r}"
        if isinstance(csr_value, dict) and list(csr_value) != list(set_value):
            return (
                f"{key} key order diverged: "
                f"csr={list(csr_value)!r} set={list(set_value)!r}"
            )
    return None


def shrink_case(case: Case, *, max_attempts: int = 200) -> Case:
    """Delta-debug the edge list down to a minimal still-failing case."""
    attempts = 0

    def still_fails(edges: List[LabelEdge]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return check_case(Case(seed=case.seed, edges=edges)) is not None

    edges = list(case.edges)
    chunk = max(1, len(edges) // 2)
    while chunk >= 1:
        i = 0
        while i < len(edges):
            candidate = edges[:i] + edges[i + chunk :]
            if candidate != edges and still_fails(candidate):
                edges = candidate  # keep the removal, retry same position
            else:
                i += chunk
        chunk //= 2
    return Case(seed=case.seed, edges=edges)


def test_csr_equivalent_to_set_paths():
    for seed in range(NUM_TRIALS):
        case = generate_case(seed)
        failure = check_case(case)
        if failure is None:
            continue
        shrunk = shrink_case(case)
        final = check_case(shrunk) or failure
        raise AssertionError(
            f"kernel differential failure: {final}\n"
            f"  original: {case.describe()}\n"
            f"  shrunk:   {shrunk.describe()}"
        )


def test_interning_round_trip_preserves_label_types():
    # Scores must be keyed by the original string labels, never by ids.
    case = generate_case(3)
    graph = Graph(case.edges)
    with use_kernels("csr"):
        scores = all_edge_structural_diversities(graph, 1)
        results = topk_online(graph, 3, 1)
    for (u, v) in scores:
        assert isinstance(u, str) and isinstance(v, str)
        assert u < v
    for (u, v), _score in results:
        assert isinstance(u, str) and isinstance(v, str)


def test_degenerate_graphs_agree():
    for edges in ([], [("a", "b")], [("a", "b"), ("c", "d")]):
        failure = check_case(Case(seed=-1, edges=list(edges)))
        assert failure is None, failure
