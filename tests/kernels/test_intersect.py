"""Unit tests for the intersection kernels and their strategy dispatch."""

import random

import pytest

from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.kernels.counters import KERNEL_COUNTERS, KernelCounters
from repro.kernels.csr import BITSET_DEGREE_FALLBACK, CSRGraph
from repro.kernels.intersect import (
    GALLOP_RATIO,
    decode_bits,
    gallop_sorted,
    intersect_count,
    intersect_ids,
    merge_sorted,
)


def ground_truth(csr, u, v):
    return sorted(set(csr.neighbor_ids(u)) & set(csr.neighbor_ids(v)))


class TestPrimitives:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ([], [], []),
            ([1, 2, 3], [], []),
            ([1, 3, 5], [2, 4, 6], []),
            ([1, 3, 5], [1, 3, 5], [1, 3, 5]),
            ([1, 2, 3, 7], [2, 3, 4, 7, 9], [2, 3, 7]),
        ],
    )
    def test_merge_and_gallop_agree(self, a, b, expected):
        assert merge_sorted(a, b) == expected
        assert gallop_sorted(a, b) == expected
        assert gallop_sorted(b, a) == expected

    def test_randomized_agreement(self):
        rng = random.Random(13)
        for _ in range(50):
            a = sorted(rng.sample(range(200), rng.randint(0, 40)))
            b = sorted(rng.sample(range(200), rng.randint(0, 40)))
            expected = sorted(set(a) & set(b))
            assert merge_sorted(a, b) == expected
            assert gallop_sorted(a, b) == expected

    def test_gallop_steps_counted(self):
        before = KERNEL_COUNTERS.gallop_steps
        gallop_sorted([5, 10], list(range(100)))
        assert KERNEL_COUNTERS.gallop_steps == before + 2

    def test_decode_bits(self):
        assert decode_bits(0) == []
        assert decode_bits(0b1) == [0]
        assert decode_bits(0b1010010) == [1, 4, 6]
        positions = [0, 3, 64, 65, 1000]
        assert decode_bits(sum(1 << p for p in positions)) == positions


class TestStrategyDispatch:
    def test_merge_fires_on_balanced_slices(self):
        g = erdos_renyi(60, 0.2, seed=9)
        csr = CSRGraph.from_graph(g)
        assert not csr.bits_built
        before = KERNEL_COUNTERS.snapshot()
        u, v = 10, 11
        assert intersect_ids(csr, u, v) == ground_truth(csr, u, v)
        delta = KERNEL_COUNTERS.delta_since(before)
        assert delta["merge_intersections"] == 1
        assert delta["bitset_intersections"] == 0

    def test_gallop_fires_on_skewed_slices(self):
        # One hub adjacent to everything, one low-degree spoke: the
        # degree ratio exceeds GALLOP_RATIO so galloping is chosen.
        hub, spoke = 10_000, 10_001
        hub_edges = [(hub, i) for i in range(8 * GALLOP_RATIO)]
        g = Graph(hub_edges + [(spoke, 0), (spoke, 1)])
        csr = CSRGraph.from_graph(g)
        u, v = csr.intern(hub), csr.intern(spoke)
        before = KERNEL_COUNTERS.snapshot()
        result = intersect_ids(csr, u, v)
        assert result == ground_truth(csr, u, v)
        assert KERNEL_COUNTERS.delta_since(before)["gallop_intersections"] == 1

    def test_bitset_fires_when_layer_built(self):
        g = erdos_renyi(40, 0.3, seed=4)
        csr = CSRGraph.from_graph(g)
        csr.ensure_bits()
        before = KERNEL_COUNTERS.snapshot()
        assert intersect_ids(csr, 20, 21) == ground_truth(csr, 20, 21)
        assert KERNEL_COUNTERS.delta_since(before)["bitset_intersections"] == 1

    def test_high_degree_fallback_builds_bitsets(self):
        # Two vertices of degree >= BITSET_DEGREE_FALLBACK with a cold
        # bitset layer: the kernel pays the packing once, counts the
        # fallback, and every later call on this snapshot is bitset.
        d = BITSET_DEGREE_FALLBACK
        a, b = 10_000, 10_001
        edges = [(a, i) for i in range(d)] + [(b, i) for i in range(d)]
        g = Graph(edges)
        csr = CSRGraph.from_graph(g)
        assert not csr.bits_built
        u, v = csr.intern(a), csr.intern(b)
        before = KERNEL_COUNTERS.snapshot()
        assert intersect_count(csr, u, v) == d
        delta = KERNEL_COUNTERS.delta_since(before)
        assert delta["bitset_fallbacks"] == 1
        assert delta["bitset_intersections"] == 1
        assert csr.bits_built
        # Second call reuses the layer -- no second fallback.
        before = KERNEL_COUNTERS.snapshot()
        assert intersect_count(csr, u, v) == d
        delta = KERNEL_COUNTERS.delta_since(before)
        assert delta["bitset_fallbacks"] == 0
        assert delta["bitset_intersections"] == 1

    def test_empty_side_short_circuits(self):
        g = Graph([(0, 1)])
        g.add_vertex(2)
        csr = CSRGraph.from_graph(g)
        isolated = csr.intern(2)
        other = csr.intern(0)
        before = KERNEL_COUNTERS.snapshot()
        assert intersect_ids(csr, isolated, other) == []
        assert intersect_count(csr, isolated, other) == 0
        delta = KERNEL_COUNTERS.delta_since(before)
        assert not any(delta.values())

    def test_count_matches_ids_everywhere(self):
        g = erdos_renyi(50, 0.25, seed=8)
        csr = CSRGraph.from_graph(g)
        for u in range(csr.n):
            for v in range(u + 1, csr.n):
                assert intersect_count(csr, u, v) == len(
                    intersect_ids(csr, u, v)
                )


class TestCounters:
    def test_reset_snapshot_delta(self):
        counters = KernelCounters()
        assert not any(counters.snapshot().values())
        counters.merge_intersections += 3
        counters.gallop_steps += 7
        base = counters.snapshot()
        counters.merge_intersections += 1
        delta = counters.delta_since(base)
        assert delta["merge_intersections"] == 1
        assert delta["gallop_steps"] == 0
        counters.reset()
        assert not any(counters.snapshot().values())

    def test_delta_tolerates_missing_keys(self):
        counters = KernelCounters()
        counters.csr_builds = 4
        assert counters.delta_since({})["csr_builds"] == 4

    def test_repr_lists_counters(self):
        assert "merge_intersections=0" in repr(KernelCounters())
