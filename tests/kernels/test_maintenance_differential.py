"""Differential test: kernel-backed maintenance ≡ set-based maintenance.

Reuses the persistence harness's case generator and delta-debugging
shrinker (``tests/persistence/harness.py``) with a custom check oracle:
the same interleaved insert/delete/vertex-op trace is applied to two
:class:`DynamicESDIndex` instances -- one forced onto the CSR kernel
route, one onto the dict-of-set route -- and every observable must stay
bit-identical after *every* op: per-update statistics, top-k answers at
several ``(k, τ)``, the exported state image, and the invariant checker.
"""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.core.maintenance import DynamicESDIndex
from repro.graph.generators import gnm_random
from repro.graph.graph import canonical_edge
from repro.kernels.dispatch import use_kernels

from tests.persistence.harness import QUERY_PAIRS, Case, Op, shrink_case

NUM_TRIALS = 20


def generate_trace(seed: int, *, max_n: int = 24, max_ops: int = 40) -> Case:
    """A random op stream that also mixes in whole-vertex surgery.

    Op kinds reuse the harness's 3-tuple shape so ``shrink_case`` can
    slice the stream freely: ``("insert"|"delete", u, v)`` plus
    ``("vertex_delete", u, 0)`` and ``("vertex_insert", u, degree)``.
    """
    rng = random.Random(seed)
    n = rng.randint(6, max_n)
    m = rng.randint(0, min(n * (n - 1) // 2, 4 * n))
    ops: List[Op] = []
    for step in range(rng.randint(4, max_ops)):
        roll = rng.random()
        if roll < 0.40:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                ops.append(("insert",) + canonical_edge(u, v))
        elif roll < 0.75:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                ops.append(("delete",) + canonical_edge(u, v))
        elif roll < 0.88:
            ops.append(("vertex_delete", rng.randrange(n), 0))
        else:
            # A fresh label with a random attachment degree.
            ops.append(("vertex_insert", n + step, rng.randint(0, 4)))
    return Case(seed=seed, n=n, m=m, ops=ops)


def _apply(dyn: DynamicESDIndex, op: Op, rng: random.Random):
    """Apply one op; return ``("ok", observation)`` or ``("err", repr)``.

    Inapplicable ops (duplicate insert, absent delete, missing vertex)
    surface as errors -- the property is that *both* modes classify and
    observe the op identically, so errors are compared, not hidden.
    """
    kind, a, b = op
    try:
        if kind == "insert":
            s = dyn.insert_edge(a, b)
            return "ok", (s.common_neighbors, s.ego_edges, s.edges_rescored)
        if kind == "delete":
            s = dyn.delete_edge(a, b)
            return "ok", (s.common_neighbors, s.ego_edges, s.edges_rescored)
        if kind == "vertex_delete":
            stats = dyn.delete_vertex(a)
            return "ok", [
                (s.common_neighbors, s.ego_edges, s.edges_rescored)
                for s in stats
            ]
        if kind == "vertex_insert":
            targets = rng.sample(
                sorted(dyn.graph.vertices()), min(b, dyn.graph.n)
            )
            stats = dyn.insert_vertex(a, targets)
            return "ok", [
                (s.common_neighbors, s.ego_edges, s.edges_rescored)
                for s in stats
            ]
        raise AssertionError(f"unknown op kind {kind!r}")
    except (ValueError, KeyError) as exc:
        return "err", f"{type(exc).__name__}: {exc}"


def check_trace(case: Case, _tmp_dir=None) -> Optional[str]:
    """The oracle: replay ``case`` in both modes, diff every observable."""
    base = gnm_random(case.n, case.m, seed=case.seed)
    with use_kernels("csr"):
        dyn_csr = DynamicESDIndex(gnm_random(case.n, case.m, seed=case.seed))
    with use_kernels("set"):
        dyn_set = DynamicESDIndex(base)
    # Two independent-but-identical RNGs: vertex_insert draws its
    # attachment targets from the current vertex set, which must match.
    rng_csr = random.Random(case.seed ^ 0xC5)
    rng_set = random.Random(case.seed ^ 0xC5)
    for step, op in enumerate(case.ops):
        with use_kernels("csr"):
            got_csr = _apply(dyn_csr, op, rng_csr)
        with use_kernels("set"):
            got_set = _apply(dyn_set, op, rng_set)
        if got_csr != got_set:
            return (
                f"op {step} {op!r} diverged: csr={got_csr!r} "
                f"set={got_set!r}"
            )
        for k, tau in QUERY_PAIRS:
            a, b = dyn_csr.topk(k, tau), dyn_set.topk(k, tau)
            if a != b:
                return (
                    f"topk(k={k}, tau={tau}) diverged after op {step} "
                    f"{op!r}: csr={a!r} set={b!r}"
                )
    if dyn_csr.export_state() != dyn_set.export_state():
        return "final export_state diverged"
    try:
        dyn_csr.check_invariants()
    except AssertionError as exc:
        return f"kernel-maintained index failed invariants: {exc}"
    try:
        dyn_set.check_invariants()
    except AssertionError as exc:
        return f"set-maintained index failed invariants: {exc}"
    return None


def test_kernel_maintenance_equivalent_on_interleaved_traces():
    failures = []
    for seed in range(NUM_TRIALS):
        case = generate_trace(seed)
        failure = check_trace(case)
        if failure is None:
            continue
        shrunk = shrink_case(case, lambda: None, check=check_trace)
        failures.append(
            f"{failure}\n  reproduce: {shrunk.describe()}\n"
            f"  (shrunk from {len(case.ops)} to {len(shrunk.ops)} ops)"
        )
    assert not failures, "\n".join(failures)


def test_batch_maintenance_equivalent():
    """``apply_batch`` (deletions then insertions) agrees across modes."""
    for seed in (3, 11):
        base_edges = list(gnm_random(18, 40, seed=seed).edges())
        rng = random.Random(seed)
        deletions = rng.sample(base_edges, 8)
        insertions = [
            canonical_edge(u, v)
            for u, v in ((rng.randrange(18), 18 + i) for i in range(6))
        ]
        states = {}
        for mode in ("csr", "set"):
            with use_kernels(mode):
                dyn = DynamicESDIndex(gnm_random(18, 40, seed=seed))
                s = dyn.apply_batch(insertions=insertions, deletions=deletions)
                dyn.check_invariants()
                states[mode] = (
                    (s.common_neighbors, s.ego_edges, s.edges_rescored),
                    dyn.export_state(),
                )
        assert states["csr"] == states["set"]


def test_batch_self_loop_rejected_before_any_mutation():
    for mode in ("csr", "set"):
        with use_kernels(mode):
            dyn = DynamicESDIndex(gnm_random(10, 15, seed=2))
            before = dyn.export_state()
            with pytest.raises(ValueError):
                dyn.apply_batch(insertions=[(50, 51), (7, 7)])
            assert dyn.export_state() == before


def test_shrinker_reuses_harness_with_custom_oracle():
    """A planted divergence shrinks to a tiny trace via ``shrink_case``."""
    case = generate_trace(1)
    poison = ("insert", 990, 991)
    case.ops = case.ops[:12] + [poison] + case.ops[12:]

    def oracle(candidate: Case, _dir) -> Optional[str]:
        return "planted" if poison in candidate.ops else None

    shrunk = shrink_case(case, lambda: None, check=oracle)
    assert shrunk.ops == [poison]
