"""Shared-memory CSR segments: layout, lifecycle, races, leak recovery.

Every test asserts ``/dev/shm`` hygiene on the way out: the module's
whole reason to exist is that segments never outlive their owners, so a
test that leaks one is itself a failure.
"""

import os
import signal
import struct
import subprocess
import sys
import textwrap
import time

import pytest

from repro.graph.generators import erdos_renyi
from repro.kernels import shm
from repro.kernels.csr import CSRGraph
from repro.kernels.shm import (
    SHM_COUNTERS,
    SharedCSRSegment,
    create_or_attach,
    live_segments,
    shm_metrics,
    sweep_stale_segments,
    unlink_namespace,
)

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="no shared-memory support"
)

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def _own_entries():
    prefix = f"esd-{os.getpid()}-"
    if not os.path.isdir("/dev/shm"):
        return []
    return [e for e in os.listdir("/dev/shm") if e.startswith(prefix)]


@pytest.fixture(autouse=True)
def _clean_slate():
    SHM_COUNTERS.reset()
    yield
    for segment in live_segments():
        segment.destroy()
    assert _own_entries() == [], "test leaked a /dev/shm segment"


@pytest.fixture
def csr():
    return CSRGraph.from_graph(erdos_renyi(40, 0.2, seed=11))


class TestRoundTrip:
    def test_attached_csr_identical(self, csr):
        segment = SharedCSRSegment.create(csr)
        attached = SharedCSRSegment.attach(segment.name)
        got = attached.csr()
        assert list(got.offsets) == list(csr.offsets)
        assert list(got.neighbors) == list(csr.neighbors)
        assert list(got.dag_start) == list(csr.dag_start)
        assert got.interner.labels == csr.interner.labels
        assert (got.n, got.m) == (csr.n, csr.m)
        attached.detach()
        segment.destroy()

    def test_array_fields_are_views_into_the_mapping(self, csr):
        segment = SharedCSRSegment.create(csr)
        got = segment.csr()
        assert isinstance(got.offsets, memoryview)
        assert isinstance(got.neighbors, memoryview)
        segment.destroy()

    def test_use_after_destroy_fails_loudly(self, csr):
        segment = SharedCSRSegment.create(csr)
        got = segment.csr()
        segment.destroy()
        with pytest.raises(ValueError):
            got.offsets[0]

    def test_edgeless_graph_round_trips(self):
        empty = CSRGraph.from_edgelist([1, 2, 3], [])
        with SharedCSRSegment.create(empty) as segment:
            got = segment.csr()
            assert (got.n, got.m) == (3, 0)
            assert got.interner.labels == empty.interner.labels

    def test_bitset_layer_builds_from_views(self, csr):
        csr.ensure_bits()
        with SharedCSRSegment.create(csr) as segment:
            got = segment.csr()
            assert got.adj_bits == csr.adj_bits


class TestLifecycle:
    def test_metrics_track_live_mappings(self, csr):
        base = shm_metrics()
        assert base["live_segments"] == 0
        segment = SharedCSRSegment.create(csr)
        attached = SharedCSRSegment.attach(segment.name)
        mid = shm_metrics()
        assert mid["live_segments"] == 2
        assert mid["mapped_bytes"] == segment.size + attached.size
        assert mid["segments_created"] == 1
        assert mid["segments_attached"] == 1
        attached.detach()
        segment.destroy()
        done = shm_metrics()
        assert done["live_segments"] == 0
        assert done["segments_detached"] == 2
        assert done["segments_unlinked"] == 1

    def test_detach_leaves_segment_for_others(self, csr):
        segment = SharedCSRSegment.create(csr)
        attached = SharedCSRSegment.attach(segment.name)
        attached.detach()
        again = SharedCSRSegment.attach(segment.name)
        again.detach()
        segment.destroy()

    def test_destroy_idempotent(self, csr):
        segment = SharedCSRSegment.create(csr)
        segment.destroy()
        segment.destroy()  # second unlink finds nothing; no raise
        assert SHM_COUNTERS.segments_unlinked == 1

    def test_context_manager_creator_destroys(self, csr):
        with SharedCSRSegment.create(csr) as segment:
            name = segment.name
        with pytest.raises(FileNotFoundError):
            SharedCSRSegment.attach(name)

    def test_context_manager_attacher_detaches(self, csr):
        segment = SharedCSRSegment.create(csr)
        with SharedCSRSegment.attach(segment.name):
            pass
        # The attacher's exit must not have unlinked the name.
        SharedCSRSegment.attach(segment.name).detach()
        segment.destroy()


class TestRaces:
    def test_attach_missing_name_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedCSRSegment.attach(f"esd-{os.getpid()}-missing-0")

    def test_attach_times_out_on_never_ready(self, csr):
        segment = SharedCSRSegment.create(csr)
        # Unpublish: flip the ready word back, as if the creator stalled
        # mid-fill after winning the name race.
        struct.pack_into("<Q", segment._shm.buf, 8, 0)
        with pytest.raises(TimeoutError):
            SharedCSRSegment.attach(segment.name, timeout=0.05)
        assert SHM_COUNTERS.attach_timeouts == 1
        struct.pack_into("<Q", segment._shm.buf, 8, 1)
        segment.destroy()

    def test_create_or_attach_single_process(self, csr):
        name = f"esd-{os.getpid()}-race-77"
        first, created = create_or_attach(name, lambda: csr)
        second, second_created = create_or_attach(
            name, lambda: pytest.fail("winner already published")
        )
        assert created is True and second_created is False
        assert list(second.csr().neighbors) == list(csr.neighbors)
        second.detach()
        first.destroy()

    def test_create_rejects_taken_name(self, csr):
        segment = SharedCSRSegment.create(csr)
        with pytest.raises(FileExistsError):
            SharedCSRSegment.create(csr, name=segment.name)
        segment.destroy()


class TestStaleSweep:
    def test_sweep_reaps_killed_creator(self, csr):
        """A kill -9'd creator leaves a segment; the sweep reclaims it."""
        code = textwrap.dedent(
            """
            import os, sys, time
            sys.path.insert(0, %r)
            from repro.graph.generators import erdos_renyi
            from repro.kernels.csr import CSRGraph
            from repro.kernels.shm import SharedCSRSegment

            seg = SharedCSRSegment.create(
                CSRGraph.from_graph(erdos_renyi(10, 0.3, seed=1))
            )
            print(seg.name, flush=True)
            time.sleep(60)
            """
            % SRC
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name and os.path.exists(f"/dev/shm/{name}")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            removed = sweep_stale_segments()
            assert name in removed
            assert not os.path.exists(f"/dev/shm/{name}")
            assert SHM_COUNTERS.stale_swept >= 1
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sweep_spares_live_processes(self, csr):
        segment = SharedCSRSegment.create(csr)
        assert sweep_stale_segments() == []
        assert os.path.exists(f"/dev/shm/{segment.name}")
        segment.destroy()

    def test_atexit_cleanup_on_clean_exit(self):
        """A clean interpreter exit removes created segments by itself."""
        code = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, %r)
            from repro.graph.generators import erdos_renyi
            from repro.kernels.csr import CSRGraph
            from repro.kernels.shm import SharedCSRSegment

            seg = SharedCSRSegment.create(
                CSRGraph.from_graph(erdos_renyi(10, 0.3, seed=1))
            )
            print(seg.name, flush=True)
            """
            % SRC
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert result.returncode == 0, result.stderr
        name = result.stdout.strip()
        assert not os.path.exists(f"/dev/shm/{name}")
        # No resource_tracker noise either -- our hooks are the single
        # cleanup authority (stderr stays empty on the happy path).
        assert "resource_tracker" not in result.stderr

    def test_unlink_namespace_removes_everything_under_prefix(self, csr):
        ns = f"esd-{os.getpid()}-nstest"
        a = SharedCSRSegment.create(csr, name=f"{ns}-v1")
        b = SharedCSRSegment.create(csr, name=f"{ns}-v2")
        removed = unlink_namespace(ns)
        assert sorted(removed) == [f"{ns}-v1", f"{ns}-v2"]
        a.detach()
        b.detach()
        assert _own_entries() == []


class TestPromtext:
    def test_shm_gauges_render(self, csr):
        from repro.obs.promtext import render_prometheus
        from repro.obs.registry import UnifiedRegistry
        from repro.service.metrics import MetricsRegistry

        registry = UnifiedRegistry(MetricsRegistry())
        registry.add_source("shm", shm_metrics)
        with SharedCSRSegment.create(csr) as segment:
            body = render_prometheus(registry.snapshot())
            assert "esd_shm_live_segments 1" in body
            assert f"esd_shm_mapped_bytes {segment.size}" in body
            assert "esd_shm_segments_created 1" in body
