"""Property-based differential test: metric kernels ≡ set references.

Same shape as ``tests/kernels/test_differential.py``: every trial
derives from one integer seed, failures report a reproduction, and a
delta-debugging shrinker minimizes the edge list before the test fails.
Two properties, one per kernel added for the metric family:

* ``truss_numbers`` through the CSR bucket peel must equal the set
  peel's table exactly (truss numbers are peel-order independent, so
  dict *value* equality is the whole contract);
* ``all_edge_ego_betweenness`` through the bitset kernel must be
  **bit-identical** to the set route -- both sides fold their terms
  with ``math.fsum``, whose correctly-rounded result is independent of
  summation order.

Vertices are string labels (``"v007"``) so every trial also round-trips
the interning boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytics.betweenness import all_edge_ego_betweenness
from repro.analytics.truss import truss_numbers
from repro.graph.graph import Graph
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.dispatch import use_kernels

LabelEdge = Tuple[str, str]

NUM_TRIALS = 25


@dataclass
class Case:
    """One reproducible trial: a string-labeled edge list."""

    seed: int
    edges: List[LabelEdge]

    def describe(self) -> str:
        return f"seed={self.seed} edges={self.edges!r}"


def generate_case(seed: int, *, max_n: int = 22) -> Case:
    """Derive a random string-labeled graph deterministically from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(4, max_n)
    p = rng.uniform(0.08, 0.5)
    edges: List[LabelEdge] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.append((f"v{i:03d}", f"v{j:03d}"))
    return Case(seed=seed, edges=edges)


def _observe(graph: Graph) -> Dict[str, object]:
    return {
        "truss": truss_numbers(graph),
        "ego_betweenness": all_edge_ego_betweenness(graph),
    }


def check_case(case: Case) -> Optional[str]:
    """Run one trial; return ``None`` on success or a failure description."""
    graph = Graph(case.edges)
    with use_kernels("csr"):
        csr_obs = _observe(graph)
    with use_kernels("set"):
        set_obs = _observe(graph)
    for key, csr_value in csr_obs.items():
        set_value = set_obs[key]
        if csr_value != set_value:
            return f"{key} diverged: csr={csr_value!r} set={set_value!r}"
    return None


def shrink_case(case: Case, *, max_attempts: int = 200) -> Case:
    """Delta-debug the edge list down to a minimal still-failing case."""
    attempts = 0

    def still_fails(edges: List[LabelEdge]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return check_case(Case(seed=case.seed, edges=edges)) is not None

    edges = list(case.edges)
    chunk = max(1, len(edges) // 2)
    while chunk >= 1:
        i = 0
        while i < len(edges):
            candidate = edges[:i] + edges[i + chunk :]
            if candidate != edges and still_fails(candidate):
                edges = candidate  # keep the removal, retry same position
            else:
                i += chunk
        chunk //= 2
    return Case(seed=case.seed, edges=edges)


def test_truss_and_ego_betweenness_kernels_match_set_paths():
    for seed in range(NUM_TRIALS):
        case = generate_case(seed)
        failure = check_case(case)
        if failure is None:
            continue
        shrunk = shrink_case(case)
        final = check_case(shrunk) or failure
        raise AssertionError(
            f"metric kernel differential failure: {final}\n"
            f"  original: {case.describe()}\n"
            f"  shrunk:   {shrunk.describe()}"
        )


def test_degenerate_graphs_agree():
    cases = (
        [],
        [("a", "b")],
        [("a", "b"), ("c", "d")],
        [("a", "b"), ("b", "c"), ("a", "c")],  # one triangle
    )
    for edges in cases:
        failure = check_case(Case(seed=-1, edges=list(edges)))
        assert failure is None, failure


def test_truss_routes_through_kernel_when_enabled():
    graph = Graph([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    with use_kernels("csr"):
        KERNEL_COUNTERS.reset()
        truss_numbers(graph)
        assert KERNEL_COUNTERS.truss_kernels == 1
    with use_kernels("set"):
        KERNEL_COUNTERS.reset()
        truss_numbers(graph)
        assert KERNEL_COUNTERS.truss_kernels == 0


def test_truss_keys_are_original_labels():
    case = generate_case(3)
    graph = Graph(case.edges)
    with use_kernels("csr"):
        table = truss_numbers(graph)
    for (u, v), value in table.items():
        assert isinstance(u, str) and isinstance(v, str)
        assert u < v
        assert isinstance(value, int) and value >= 2
