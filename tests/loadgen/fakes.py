"""Deterministic test substrate for the loadgen harness.

``FakeClock`` makes time a pure variable: ``sleep`` advances ``now``
instantly, so a simulated multi-minute run executes in microseconds and
every timestamp in the result is *exact* -- schedules, lateness
accounting, and knee bisection are tested with zero wall-clock sleeps.

``FakeTransport`` is a scripted server on the same fake clock: each
request advances time by a service duration (overridable per request
index to model stalls) and can be scripted to raise structured errors.
Together they let the coordinated-omission property be proven as an
equality, not observed as a flaky timing artifact.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.loadgen.clock import Clock
from repro.service.client import ServiceError


class FakeClock(Clock):
    """A clock whose ``sleep`` advances ``now`` instead of blocking."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.advance(seconds)

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += seconds


class FakeTransport:
    """Scripted protocol peer: canned replies, scripted time and errors.

    ``service_time`` is the default seconds each request consumes on the
    shared :class:`FakeClock`.  ``stalls`` maps a global request index
    (0-based, counted across all ops on this transport) to a longer
    duration -- the deliberately stalled server of the
    coordinated-omission test.  ``errors`` maps request indexes to
    structured error codes raised as :class:`ServiceError`.
    """

    def __init__(
        self,
        clock: FakeClock,
        service_time: float = 0.001,
        stalls: Optional[Dict[int, float]] = None,
        errors: Optional[Dict[int, str]] = None,
    ) -> None:
        self.clock = clock
        self.service_time = service_time
        self.stalls = stalls or {}
        self.errors = errors or {}
        self.calls = 0
        self.log: List[Tuple[str, Dict[str, Any]]] = []
        self.closed = False
        self._watch_ids = 0

    def request(self, op: str, **fields: Any) -> Any:
        index = self.calls
        self.calls += 1
        self.log.append((op, fields))
        self.clock.advance(self.stalls.get(index, self.service_time))
        if index in self.errors:
            raise ServiceError(self.errors[index], "scripted error")
        if op == "watch":
            self._watch_ids += 1
            return {"watch_id": self._watch_ids, "top": [],
                    "graph_version": 0}
        if op == "changes":
            return {"watch_id": fields.get("watch_id"), "changes": []}
        if op == "unwatch":
            return {"watch_id": fields.get("watch_id"), "removed": True}
        if op == "topk":
            return {"items": [], "graph_version": 0, "cached": False,
                    "batched": 1}
        if op == "update":
            return {"applied": True, "graph_version": 0}
        return {"op": op}

    def close(self) -> None:
        self.closed = True
