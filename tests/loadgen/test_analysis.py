"""Property-based checks on the analysis layer (stdlib, no hypothesis).

Two kinds of guarantee are pinned here:

* the percentile path -- the PR-4 "never under-report the tail"
  invariant must survive the reservoir: an estimate computed from the
  uniform sample must sit where the full distribution says it should,
  and degenerate to *exact* equality whenever the reservoir never
  overflowed;
* the knee bisection -- on a synthetic latency model with a known
  capacity cliff, the sweep must land on the cliff to within bracket
  resolution, record every probe, and flag unsaturated/hopeless
  brackets instead of inventing an answer.

Failures shrink: the sample list is delta-debugged (halving chunks,
then single samples) to a minimal still-failing case, mirroring the
``tests/persistence`` harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.loadgen.analysis import Slo, capacity_sweep, coordinated_omission_gap
from repro.loadgen.driver import OpRecord, Reservoir
from repro.service.metrics import percentile

RESERVOIR_CAPACITY = 512
FRACTIONS = (0.50, 0.95, 0.99, 0.999)


# -- case generation ----------------------------------------------------------


@dataclass
class Case:
    seed: int
    distribution: str
    samples: List[float]

    def describe(self) -> str:
        return (
            f"seed={self.seed} distribution={self.distribution} "
            f"n={len(self.samples)} samples={self.samples[:20]!r}..."
        )


def generate_case(seed: int, max_n: int = 4000) -> Case:
    rng = random.Random(seed)
    n = rng.randint(1, max_n)
    distribution = rng.choice(
        ["uniform", "lognormal", "constant", "bimodal"]
    )
    if distribution == "uniform":
        samples = [rng.uniform(0.0, 1.0) for _ in range(n)]
    elif distribution == "lognormal":
        samples = [rng.lognormvariate(0.0, 1.5) for _ in range(n)]
    elif distribution == "constant":
        samples = [0.25] * n
    else:  # bimodal: fast mode plus a heavy stall mode -- the CO shape
        samples = [
            2.0 if rng.random() < 0.05 else rng.uniform(0.001, 0.01)
            for _ in range(n)
        ]
    return Case(seed=seed, distribution=distribution, samples=samples)


def check_case(case: Case) -> Optional[str]:
    """Return ``None`` on success or a description of the violation."""
    samples = case.samples
    n = len(samples)
    estimates = [percentile(samples, f) for f in FRACTIONS]

    # Never-under-report, on the full data: at least a fraction f of the
    # samples sit at or below the reported pf.
    for f, estimate in zip(FRACTIONS, estimates):
        if not min(samples) <= estimate <= max(samples):
            return f"p{f}: estimate {estimate} outside sample range"
        at_or_below = sum(1 for x in samples if x <= estimate) / n
        if at_or_below < f - 1e-12:
            return (
                f"p{f} under-reports: only {at_or_below:.4f} of samples "
                f"<= {estimate}"
            )
    if estimates != sorted(estimates):
        return f"percentiles not monotone in fraction: {estimates}"

    # Through the reservoir.
    reservoir = Reservoir(capacity=RESERVOIR_CAPACITY, seed=case.seed)
    for x in samples:
        reservoir.offer(x)
    kept = reservoir.items()
    for f, exact in zip(FRACTIONS, estimates):
        sampled = percentile(kept, f)
        if n <= RESERVOIR_CAPACITY:
            if sampled != exact:
                return (
                    f"p{f}: reservoir never overflowed but estimate "
                    f"{sampled} != exact {exact}"
                )
            continue
        if f >= 0.999:
            continue  # 512 samples cannot resolve p999; skip, don't lie
        # The estimate must occupy roughly the f-quantile position of
        # the FULL distribution.  Bands are >5 sigma for a 512-sample
        # order statistic; `<=` vs `<` makes both sides tie-safe.
        tolerance = {0.50: 0.12, 0.95: 0.06, 0.99: 0.03}[f]
        at_or_below = sum(1 for x in samples if x <= sampled) / n
        strictly_below = sum(1 for x in samples if x < sampled) / n
        if at_or_below < f - tolerance:
            return (
                f"p{f}: reservoir estimate {sampled} sits at quantile "
                f"{at_or_below:.4f} of the full data (too low)"
            )
        if strictly_below > f + tolerance:
            return (
                f"p{f}: reservoir estimate {sampled} sits above quantile "
                f"{strictly_below:.4f} of the full data (too high)"
            )
    return None


def shrink_case(case: Case, max_attempts: int = 300) -> Case:
    """Delta-debug the sample list to a minimal still-failing case."""
    attempts = 0

    def still_fails(samples: List[float]) -> bool:
        nonlocal attempts
        if not samples or attempts >= max_attempts:
            return False
        attempts += 1
        candidate = Case(case.seed, case.distribution, samples)
        return check_case(candidate) is not None

    samples = list(case.samples)
    chunk = max(1, len(samples) // 2)
    while chunk >= 1:
        i = 0
        while i < len(samples):
            candidate = samples[:i] + samples[i + chunk:]
            if candidate != samples and still_fails(candidate):
                samples = candidate
            else:
                i += chunk
        chunk //= 2
    return Case(case.seed, case.distribution, samples)


class TestPercentileProperties:
    def test_random_distributions_respect_the_invariants(self):
        for seed in range(40):
            case = generate_case(seed)
            failure = check_case(case)
            if failure is not None:
                minimal = shrink_case(case)
                pytest.fail(
                    f"{failure}\nminimal reproduction: {minimal.describe()}\n"
                    f"re-run with generate_case({seed})"
                )

    def test_p99_of_100_samples_is_the_worst_sample(self):
        # The PR-4 regression shape: ceil-rank must pick index 99.
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.99) == 100.0

    def test_single_sample_is_every_percentile(self):
        for f in FRACTIONS:
            assert percentile([7.0], f) == 7.0


# -- SLO + sweep --------------------------------------------------------------


def _summary(rate: float, p99_ms: float, error_rate: float = 0.0):
    return {
        "offered_rate_rps": rate,
        "latency_ms": {"p50": p99_ms / 4, "p95": p99_ms / 2,
                       "p99": p99_ms, "p999": p99_ms * 2},
        "error_rate": error_rate,
    }


class TestSlo:
    def test_met_checks_latency_and_errors(self):
        slo = Slo(p99_ms=50.0, max_error_rate=0.01)
        assert slo.met(_summary(10, 50.0, 0.01))
        assert not slo.met(_summary(10, 50.1, 0.0))
        assert not slo.met(_summary(10, 10.0, 0.02))
        assert slo.as_dict() == {"p99_ms": 50.0, "max_error_rate": 0.01}


class TestCapacitySweep:
    CAPACITY = 120.0  # the synthetic server's cliff

    def _probe(self, rate: float):
        # Flat 5 ms p99 below capacity, 100 ms above: a hard knee.
        return _summary(rate, 5.0 if rate <= self.CAPACITY else 100.0)

    def test_bisection_finds_the_cliff(self):
        sweep = capacity_sweep(
            self._probe, lo=10.0, hi=400.0, slo=Slo(p99_ms=50.0),
            iterations=8,
        )
        resolution = (400.0 - 10.0) / 2 ** 8
        assert sweep["saturated"] is True
        assert (
            self.CAPACITY - resolution
            <= sweep["knee_rate_rps"]
            <= self.CAPACITY
        )
        rates = [p["offered_rate_rps"] for p in sweep["points"]]
        assert rates == sorted(rates)
        assert len(sweep["points"]) == 10  # lo + hi + 8 bisection probes
        assert all("slo_met" in p for p in sweep["points"])

    def test_hopeless_bracket_returns_no_knee(self):
        sweep = capacity_sweep(
            self._probe, lo=200.0, hi=400.0, slo=Slo(p99_ms=50.0),
        )
        assert sweep["knee_rate_rps"] is None
        assert sweep["saturated"] is False
        assert len(sweep["points"]) == 1  # failed at lo, stopped

    def test_unsaturated_bracket_returns_hi(self):
        sweep = capacity_sweep(
            self._probe, lo=10.0, hi=100.0, slo=Slo(p99_ms=50.0),
        )
        assert sweep["knee_rate_rps"] == 100.0
        assert sweep["saturated"] is False
        assert len(sweep["points"]) == 2

    def test_rejects_bad_bracket(self):
        with pytest.raises(ValueError):
            capacity_sweep(self._probe, lo=50.0, hi=50.0, slo=Slo(p99_ms=1.0))
        with pytest.raises(ValueError):
            capacity_sweep(self._probe, lo=0.0, hi=50.0, slo=Slo(p99_ms=1.0))


class TestCoordinatedOmissionGap:
    def test_gap_reports_the_hidden_factor(self):
        records = [
            OpRecord(deadline=i * 0.01, sent=i * 0.01,
                     done=i * 0.01 + 0.001, op="topk", kind="read")
            for i in range(99)
        ]
        # One op sent 1.99 s late (server stall): 2 s open-loop latency,
        # 10 ms of actual service time.
        records.append(
            OpRecord(deadline=1.0, sent=2.99, done=3.0, op="topk",
                     kind="read")
        )
        gap = coordinated_omission_gap(records)
        assert gap["open_loop_p99_ms"] == pytest.approx(2000.0)
        assert gap["closed_loop_p99_ms"] == pytest.approx(10.0)
        assert gap["hidden_factor"] == pytest.approx(200.0)
