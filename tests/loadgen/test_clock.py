"""The clock seam: the one place wall time enters the harness."""

import time

import pytest

from repro.loadgen.clock import SYSTEM_CLOCK, Clock, SystemClock

from tests.loadgen.fakes import FakeClock


class TestSystemClock:
    def test_now_is_monotonic_nondecreasing(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_zero_and_negative_return_immediately(self):
        clock = SystemClock()
        start = time.monotonic()
        clock.sleep(0.0)
        clock.sleep(-5.0)
        assert time.monotonic() - start < 0.25

    def test_module_singleton_is_a_system_clock(self):
        assert isinstance(SYSTEM_CLOCK, SystemClock)


class TestClockBase:
    def test_base_class_is_abstract_in_spirit(self):
        clock = Clock()
        with pytest.raises(NotImplementedError):
            clock.now()
        with pytest.raises(NotImplementedError):
            clock.sleep(1.0)


class TestFakeClock:
    def test_sleep_advances_instead_of_blocking(self):
        clock = FakeClock()
        start = time.monotonic()
        clock.sleep(3600.0)  # an hour of simulated time
        assert clock.now() == 3600.0
        assert time.monotonic() - start < 0.25  # ...in no wall time

    def test_negative_and_zero_sleep_do_not_move_time(self):
        clock = FakeClock(start=10.0)
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.now() == 10.0

    def test_advance_accumulates(self):
        clock = FakeClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0
