"""Driver semantics on the deterministic substrate -- no wall-clock sleeps.

The centrepiece is the coordinated-omission test: a scripted server that
stalls for two seconds must surface a ~2 s open-loop p99, while the
send-anchored (closed-loop) view of the *same run* stays at ~1 ms.  That
gap is the measurement error the whole harness exists to remove.
"""

import pytest

from repro.loadgen.analysis import coordinated_omission_gap, summarize
from repro.loadgen.driver import LoadDriver, Reservoir, measure_baseline
from repro.loadgen.scenario import PROFILES, Profile, build_plan
from repro.loadgen.schedule import arrival_times, constant
from repro.service.metrics import percentile

from tests.loadgen.fakes import FakeClock, FakeTransport

READS_ONLY = Profile("reads_only", write_ratio=0.0)
WATCH_ONLY = Profile("watch_only", write_ratio=0.0, watch_ratio=1.0)


def _reads_plan(rate, duration, seed=0):
    return build_plan(
        arrival_times([constant(rate, duration)]), READS_ONLY, seed=seed
    )


class TestCoordinatedOmission:
    def test_stalled_server_shows_up_in_open_loop_p99(self):
        """1000 ops at 100/s; the server stalls 2 s on request #100.

        Open loop: the stall blocks the (single) worker, so ~200 queued
        ops go out late and their deadline-anchored latencies span
        (0, 2] s -- p99 lands near the stall duration.  Closed loop:
        every op but one took ~1 ms of service time, so the send-anchored
        p99 stays at ~1 ms.  A closed-loop harness would have reported
        the optimistic number; the open-loop accounting keeps the honest
        one.
        """
        clock = FakeClock()
        transport = FakeTransport(clock, service_time=0.001, stalls={100: 2.0})
        driver = LoadDriver(lambda: transport, workers=1, clock=clock)
        result = driver.run(_reads_plan(100.0, 10.0))

        assert result.completed == result.scheduled == 1000
        assert result.errors == {}
        assert len(result.records) == 1000  # reservoir never overflowed

        open_p99 = percentile([r.latency for r in result.records], 0.99)
        closed_p99 = percentile(
            [r.service_time for r in result.records], 0.99
        )
        assert 1.0 <= open_p99 <= 2.05  # ~ the stall duration
        assert closed_p99 <= 0.01  # the lie a closed loop would tell
        assert 1.9 <= result.max_latency <= 2.1
        assert result.max_lateness >= 1.8  # queueing delay was charged

        gap = coordinated_omission_gap(result.records)
        assert gap["open_loop_p99_ms"] >= 1000.0
        assert gap["closed_loop_p99_ms"] <= 10.0
        assert gap["hidden_factor"] >= 100.0

    def test_unstalled_run_shows_no_gap(self):
        clock = FakeClock()
        transport = FakeTransport(clock, service_time=0.001)
        driver = LoadDriver(lambda: transport, workers=1, clock=clock)
        result = driver.run(_reads_plan(100.0, 5.0))
        assert result.completed == 500
        # Sends land exactly on their deadlines: latency == service time.
        for record in result.records:
            assert record.sent == pytest.approx(record.deadline)
            assert record.latency == pytest.approx(record.service_time)
        assert result.max_lateness == pytest.approx(0.0)


class TestDriverAccounting:
    def test_structured_errors_counted_by_code(self):
        clock = FakeClock()
        transport = FakeTransport(
            clock,
            errors={3: "overloaded", 7: "overloaded", 11: "invalid_argument"},
        )
        driver = LoadDriver(lambda: transport, workers=1, clock=clock)
        result = driver.run(_reads_plan(100.0, 1.0))
        assert result.completed == 100
        assert result.errors == {"overloaded": 2, "invalid_argument": 1}
        assert result.ok == 97
        assert result.error_total == 3

    def test_setup_pool_inserted_before_scheduled_stream(self):
        clock = FakeClock()
        transport = FakeTransport(clock)
        plan = build_plan(
            arrival_times([constant(100.0, 1.0)]),
            PROFILES["write_heavy"],
            seed=1,
        )
        LoadDriver(lambda: transport, workers=1, clock=clock).run(plan)
        setup = transport.log[: len(plan.setup_edges)]
        assert all(op == "update" for op, _ in setup)
        assert [
            (fields["u"], fields["v"]) for _, fields in setup
        ] == plan.setup_edges
        assert all(fields["action"] == "insert" for _, fields in setup)

    def test_watch_cycle_is_one_op_three_requests(self):
        clock = FakeClock()
        transport = FakeTransport(clock)
        plan = build_plan(
            arrival_times([constant(50.0, 1.0)]), WATCH_ONLY, seed=2
        )
        result = LoadDriver(lambda: transport, workers=1, clock=clock).run(plan)
        assert result.completed == 50  # one logical op per cycle
        assert transport.calls == 150
        for i in range(0, 150, 3):
            (op_a, _), (op_b, fb), (op_c, fc) = transport.log[i : i + 3]
            assert (op_a, op_b, op_c) == ("watch", "changes", "unwatch")
            assert fb["watch_id"] == fc["watch_id"]

    def test_thread_pool_path_completes_everything(self):
        # Threads + FakeClock: sleeps are instant, so this is fast; the
        # point is that the shared-cursor path loses no ops.
        clock = FakeClock()
        driver = LoadDriver(
            lambda: FakeTransport(clock), workers=4, clock=clock
        )
        result = driver.run(_reads_plan(200.0, 2.0))
        assert result.completed == result.scheduled == 400
        assert result.errors == {}

    def test_summarize_counts_are_exact(self):
        clock = FakeClock()
        transport = FakeTransport(clock, errors={5: "overloaded"})
        result = LoadDriver(lambda: transport, workers=1, clock=clock).run(
            _reads_plan(100.0, 2.0)
        )
        summary = summarize(result, offered_rate=100.0, duration=2.0)
        assert summary["scheduled"] == summary["completed"] == 200
        assert summary["ok"] == 199
        assert summary["errors"] == {"overloaded": 1}
        assert summary["error_rate"] == pytest.approx(1 / 200)
        assert summary["goodput_rps"] == pytest.approx(99.5)
        assert summary["latency_samples"] == 200
        assert set(summary["latency_ms"]) == {"p50", "p95", "p99", "p999"}


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        reservoir = Reservoir(capacity=100)
        for i in range(50):
            reservoir.offer(i)
        assert reservoir.items() == list(range(50))
        assert reservoir.offered == 50

    def test_capacity_bounded_and_offered_exact(self):
        reservoir = Reservoir(capacity=64, seed=9)
        for i in range(10_000):
            reservoir.offer(i)
        items = reservoir.items()
        assert len(items) == len(reservoir) == 64
        assert reservoir.offered == 10_000
        # Uniform over the stream, not just the head or the tail.
        assert min(items) < 2_500 and max(items) > 7_500

    def test_deterministic_by_seed(self):
        def fill(seed):
            r = Reservoir(capacity=32, seed=seed)
            for i in range(1000):
                r.offer(i)
            return r.items()

        assert fill(4) == fill(4)
        assert fill(4) != fill(5)

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


class TestBaseline:
    def test_closed_loop_rate_matches_service_time(self):
        clock = FakeClock()
        baseline = measure_baseline(
            lambda: FakeTransport(clock, service_time=0.01),
            duration=1.0,
            clock=clock,
        )
        assert baseline == pytest.approx(100.0, rel=0.05)
