"""Loadgen against a real in-process server: the wall-clock smoke path.

Short real-time runs (fractions of a second) -- everything heavier runs
on the ``FakeClock`` substrate in the sibling modules.  The invariant
gated here is the one CI's load-smoke job re-checks from the shell: an
open-loop run against a healthy server completes every scheduled op
with **zero protocol errors**, and the sweep emits a record that
validates against the BENCH_PR8 schema.
"""

import json

import pytest

from repro.cli import main
from repro.graph.generators import gnm_random
from repro.loadgen import runner
from repro.loadgen.analysis import Slo
from repro.loadgen.report import save_payload, validate_payload
from repro.service import ESDServer, ServerConfig


@pytest.fixture
def server():
    instance = ESDServer(
        gnm_random(30, 90, seed=8), ServerConfig(port=0, batch_window=0.0)
    ).start()
    yield instance
    instance.shutdown()


class TestRunScenario:
    def test_mixed_run_is_error_free(self, server):
        host, port = server.address
        summary, prometheus = runner.run_with_scrapes(
            host, port,
            scenario="mixed", rate=60.0, duration=0.5, workers=4, seed=3,
        )
        assert summary["completed"] == summary["scheduled"] > 0
        assert summary["errors"] == {}
        assert summary["error_rate"] == 0.0
        assert summary["goodput_rps"] > 0
        assert summary["reads"] > 0 and summary["writes"] > 0
        # Server-side counters corroborate the client-side story.
        assert prometheus is not None
        requests = prometheus["esd_endpoint_requests"]
        assert requests.get("topk", 0) >= summary["reads"] * 0.5
        assert requests.get("update", 0) >= summary["writes"]

    def test_watch_fanout_exercises_watch_endpoints(self, server):
        host, port = server.address
        summary, prometheus = runner.run_with_scrapes(
            host, port,
            scenario="watch_fanout", rate=40.0, duration=0.5, workers=2,
            seed=4,
        )
        assert summary["errors"] == {}
        assert prometheus["esd_endpoint_requests"].get("watch", 0) > 0
        assert prometheus["esd_endpoint_requests"].get("unwatch", 0) > 0


class TestSweepEndToEnd:
    def test_sweep_emits_a_valid_record(self, server):
        host, port = server.address
        payload = runner.run_sweep(
            host, port,
            scenario="read_heavy",
            slo=Slo(p99_ms=10_000.0),  # generous: gate the plumbing,
            lo=20.0, hi=40.0,          # not this machine's speed
            duration=0.4,
            workers=2,
            iterations=0,
            baseline_duration=0.2,
        )
        assert validate_payload(payload) == []
        # Both bracket probes met the huge SLO: knee == hi, unsaturated.
        assert payload["knee_rate_rps"] == 40.0
        assert payload["sweep"]["saturated"] is False
        assert payload["baseline_rate_rps"] > 0
        assert payload["knee_vs_baseline"] is not None
        for point in payload["sweep"]["points"]:
            assert point["errors"] == {}


class TestCli:
    def test_load_run_prints_summary_json(self, server, capsys):
        host, port = server.address
        assert main([
            "load", "run", "--host", host, "--port", str(port),
            "--rate", "30", "--duration", "0.4", "--workers", "2",
            "--scenario", "read_heavy", "--process", "constant",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == {}
        assert document["summary"]["scheduled"] == 12

    def test_load_run_gates_on_slo(self, server, capsys):
        host, port = server.address
        code = main([
            "load", "run", "--host", host, "--port", str(port),
            "--rate", "30", "--duration", "0.3", "--workers", "2",
            "--scenario", "read_heavy", "--slo-p99-ms", "0.000001",
        ])
        assert code == 1  # nothing answers in a nanosecond

    def test_load_report_round_trip(self, server, tmp_path, capsys):
        host, port = server.address
        payload = runner.run_sweep(
            host, port,
            scenario="mixed", slo=Slo(p99_ms=10_000.0),
            lo=20.0, hi=30.0, duration=0.3, workers=2, iterations=0,
            baseline_duration=0.2,
        )
        record = save_payload(payload, tmp_path / "bench.json")
        assert main(["load", "report", str(record)]) == 0
        out = capsys.readouterr().out
        assert "capacity verdict" in out
        assert "knee / baseline" in out
