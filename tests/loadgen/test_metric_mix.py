"""Profile ``metric_mix``: stamping, determinism, legacy-plan stability."""

import pytest

from repro.loadgen.scenario import PROFILES, Profile, build_plan


DEADLINES = [i * 0.01 for i in range(400)]


def test_legacy_profiles_have_no_metric_field():
    for name in ("read_heavy", "mixed", "write_heavy", "watch_fanout"):
        plan = build_plan(DEADLINES, PROFILES[name], seed=7)
        assert all("metric" not in op.fields for op in plan.ops)


def test_cross_metric_plan_spreads_reads_over_the_family():
    plan = build_plan(DEADLINES, PROFILES["cross_metric"], seed=7)
    metrics = [
        op.fields["metric"] for op in plan.ops if op.op == "topk"
    ]
    assert metrics, "cross_metric must schedule topk reads"
    counts = {name: metrics.count(name) for name in set(metrics)}
    assert set(counts) == {"esd", "truss", "betweenness", "common_neighbors"}
    # esd carries the dominant weight (0.70 of reads).
    assert counts["esd"] > counts["truss"]


def test_plans_are_deterministic_per_seed():
    one = build_plan(DEADLINES, PROFILES["cross_metric"], seed=3)
    two = build_plan(DEADLINES, PROFILES["cross_metric"], seed=3)
    assert one.ops == two.ops
    other = build_plan(DEADLINES, PROFILES["cross_metric"], seed=4)
    assert one.ops != other.ops


def test_single_non_esd_mix_stamps_every_read():
    profile = Profile(
        "truss_only", write_ratio=0.0, metric_mix=(("truss", 1.0),)
    )
    plan = build_plan(DEADLINES[:50], profile, seed=1)
    assert all(op.fields["metric"] == "truss" for op in plan.ops)


def test_metric_mix_validation():
    with pytest.raises(ValueError, match="metric_mix must not be empty"):
        Profile("bad", write_ratio=0.0, metric_mix=())
    with pytest.raises(ValueError, match="must be >= 0"):
        Profile("bad", write_ratio=0.0, metric_mix=(("esd", -1.0),))
    with pytest.raises(ValueError, match="sum to > 0"):
        Profile("bad", write_ratio=0.0, metric_mix=(("esd", 0.0),))
    with pytest.raises(ValueError, match="non-empty"):
        Profile("bad", write_ratio=0.0, metric_mix=(("", 1.0),))
