"""Per-metric latency attribution in cross-metric loadgen runs.

One slow scorer must not be able to hide inside the folded latency
series: when a run mixes metrics, ``summarize`` splits the open-loop
distribution per metric and the report renders the split.  Single-
metric runs keep the legacy payload shape (no new key), so committed
BENCH_PR8-style records stay schema-stable.
"""

from __future__ import annotations

from repro.loadgen.analysis import summarize
from repro.loadgen.driver import OpRecord, RunResult, _op_metric
from repro.loadgen.report import render_tables
from repro.loadgen.scenario import ScheduledOp


def _record(latency: float, metric, op: str = "topk") -> OpRecord:
    return OpRecord(
        deadline=0.0,
        sent=0.0,
        done=latency,
        op=op,
        kind="read" if op == "topk" else "write",
        metric=metric,
    )


def _result(records) -> RunResult:
    result = RunResult(scheduled=len(records), completed=len(records))
    result.ok = len(records)
    result.records = list(records)
    result.wall_seconds = 1.0
    return result


class TestOpMetric:
    def test_topk_defaults_to_esd(self):
        op = ScheduledOp(deadline=0.0, op="topk", fields={"k": 5}, kind="read")
        assert _op_metric(op) == "esd"

    def test_topk_carries_its_metric(self):
        op = ScheduledOp(
            deadline=0.0,
            op="topk",
            fields={"k": 5, "metric": "truss"},
            kind="read",
        )
        assert _op_metric(op) == "truss"

    def test_writes_are_unattributed(self):
        op = ScheduledOp(
            deadline=0.0,
            op="update",
            fields={"action": "insert", "u": 1, "v": 2},
            kind="write",
        )
        assert _op_metric(op) is None


class TestSummarizeSplit:
    def test_cross_metric_run_gets_the_split(self):
        records = (
            [_record(0.010, "esd") for _ in range(10)]
            + [_record(0.200, "truss") for _ in range(10)]
            + [_record(0.005, None, op="update")]
        )
        summary = summarize(_result(records), offered_rate=10.0, duration=1.0)
        split = summary["per_metric_latency_ms"]
        assert set(split) == {"esd", "truss"}
        assert split["esd"]["samples"] == 10
        assert split["truss"]["samples"] == 10
        # The folded p99 hides the slow scorer; the split must not.
        assert split["truss"]["p99"] > split["esd"]["p99"] * 10
        for dist in split.values():
            assert set(dist) >= {"p50", "p95", "p99", "samples"}

    def test_single_metric_run_keeps_legacy_shape(self):
        records = [_record(0.010, "esd") for _ in range(5)]
        summary = summarize(_result(records), offered_rate=5.0, duration=1.0)
        assert "per_metric_latency_ms" not in summary

    def test_unattributed_records_never_form_a_split(self):
        records = [_record(0.010, None, op="update") for _ in range(5)]
        summary = summarize(_result(records), offered_rate=5.0, duration=1.0)
        assert "per_metric_latency_ms" not in summary


class TestReportRendersSplit:
    @staticmethod
    def _payload(point) -> dict:
        return {
            "scenario": "cross_metric",
            "baseline_rate_rps": 100.0,
            "sweep": {
                "slo": {"p99_ms": 50.0, "max_error_rate": 0.0},
                "points": [point],
            },
            "knee_rate_rps": 10.0,
            "knee_vs_baseline": 0.1,
        }

    @staticmethod
    def _point(**extra) -> dict:
        return {
            "offered_rate_rps": 10.0,
            "goodput_rps": 10.0,
            "error_rate": 0.0,
            "latency_ms": {"p50": 1.0, "p95": 2.0, "p99": 3.0},
            "slo_met": True,
            **extra,
        }

    def test_split_table_appears_for_cross_metric_points(self):
        point = self._point(
            per_metric_latency_ms={
                "esd": {"p50": 1.0, "p95": 2.0, "p99": 3.0, "samples": 10},
                "truss": {"p50": 9.0, "p95": 20.0, "p99": 30.0, "samples": 10},
            }
        )
        tables = render_tables(self._payload(point))
        titles = [t.title for t in tables]
        assert "per-metric latency (open-loop)" in titles
        split = tables[titles.index("per-metric latency (open-loop)")]
        rendered = split.render()
        assert "truss" in rendered and "esd" in rendered

    def test_no_split_table_without_the_key(self):
        tables = render_tables(self._payload(self._point()))
        titles = [t.title for t in tables]
        assert "per-metric latency (open-loop)" not in titles
