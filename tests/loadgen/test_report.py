"""BENCH_PR8 payloads: build, validate, persist, render, fold scrapes."""

import pytest

from repro.loadgen.analysis import Slo, capacity_sweep
from repro.loadgen.report import (
    SCHEMA_VERSION,
    build_payload,
    fold_scrapes,
    load_payload,
    render_tables,
    save_payload,
    validate_payload,
)


def _summary(rate, p99):
    return {
        "offered_rate_rps": rate,
        "goodput_rps": rate * 0.99,
        "error_rate": 0.0,
        "latency_ms": {"p50": p99 / 4, "p95": p99 / 2, "p99": p99,
                       "p999": p99 * 2},
    }


def _payload(**overrides):
    sweep = capacity_sweep(
        lambda rate: _summary(rate, 5.0 if rate <= 60 else 500.0),
        lo=10.0,
        hi=200.0,
        slo=Slo(p99_ms=50.0),
        iterations=4,
    )
    kwargs = dict(
        scenario="mixed",
        sweep=sweep,
        baseline_rate_rps=80.0,
        seed=0,
        workers=4,
        trial_duration_s=2.0,
    )
    kwargs.update(overrides)
    return build_payload(**kwargs)


class TestPayload:
    def test_built_payload_validates_clean(self):
        payload = _payload()
        assert validate_payload(payload) == []
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "loadgen"
        assert payload["knee_rate_rps"] is not None
        assert payload["knee_vs_baseline"] == pytest.approx(
            payload["knee_rate_rps"] / 80.0, abs=1e-3
        )

    def test_validation_names_every_problem(self):
        payload = _payload()
        del payload["scenario"]
        payload["schema"] = 99
        payload["sweep"]["points"][0].pop("goodput_rps")
        problems = validate_payload(payload)
        assert any("scenario" in p for p in problems)
        assert any("schema" in p for p in problems)
        assert any("goodput_rps" in p for p in problems)

    def test_empty_points_rejected(self):
        payload = _payload()
        payload["sweep"]["points"] = []
        assert any(
            "points" in p for p in validate_payload(payload)
        )

    def test_missing_knee_is_valid_when_null(self):
        payload = _payload()
        payload["knee_rate_rps"] = None
        payload["knee_vs_baseline"] = None
        assert validate_payload(payload) == []

    def test_round_trip_through_disk(self, tmp_path):
        payload = _payload()
        path = save_payload(payload, tmp_path / "bench.json")
        assert load_payload(path) == payload
        assert path.read_text().endswith("\n")

    def test_render_tables_show_curve_and_verdict(self):
        payload = _payload(
            prometheus={"esd_endpoint_requests": {"topk": 420.0}}
        )
        rendered = "\n".join(t.render() for t in render_tables(payload))
        assert "offered r/s" in rendered
        assert "knee rate r/s" in rendered
        assert "pass" in rendered and "FAIL" in rendered
        assert "topk=420" in rendered


class TestFoldScrapes:
    BEFORE = (
        'esd_endpoint_requests{endpoint="topk"} 10\n'
        'esd_endpoint_requests{endpoint="update"} 3\n'
        'esd_endpoint_errors{endpoint="topk"} 1\n'
        "esd_graph_version 5\n"
    )
    AFTER = (
        'esd_endpoint_requests{endpoint="topk"} 110\n'
        'esd_endpoint_requests{endpoint="update"} 3\n'
        'esd_endpoint_requests{endpoint="watch"} 7\n'
        'esd_endpoint_errors{endpoint="topk"} 1\n'
        "esd_graph_version 9\n"
    )

    def test_deltas_per_endpoint(self):
        folded = fold_scrapes(self.BEFORE, self.AFTER)
        # update didn't move and errors didn't move: zero deltas drop out;
        # watch appeared mid-window and counts from zero.
        assert folded == {
            "esd_endpoint_requests": {"topk": 100.0, "watch": 7.0}
        }

    def test_identical_scrapes_fold_to_nothing(self):
        assert fold_scrapes(self.BEFORE, self.BEFORE) == {}
