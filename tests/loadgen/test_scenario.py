"""Scenario plans: deterministic mixes, safe mutation pools."""

import pytest

from repro.bench.workloads import LOADGEN_EDGE_BASE, mutation_edges
from repro.loadgen.scenario import PROFILES, Profile, build_plan
from repro.loadgen.schedule import arrival_times, constant

DEADLINES = arrival_times([constant(1000.0, 4.0)])  # 4000 evenly spaced ops


def _plan(profile_name, seed=0, edge_base=LOADGEN_EDGE_BASE):
    return build_plan(DEADLINES, PROFILES[profile_name], seed=seed,
                      edge_base=edge_base)


class TestProfileValidation:
    def test_ratios_must_be_fractions(self):
        with pytest.raises(ValueError):
            Profile("bad", write_ratio=1.5)
        with pytest.raises(ValueError):
            Profile("bad", write_ratio=0.1, watch_ratio=-0.1)

    def test_query_grid_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Profile("bad", write_ratio=0.1, query_grid=())

    def test_builtin_profiles_cover_the_cli_choices(self):
        assert set(PROFILES) == {
            "read_heavy", "mixed", "write_heavy", "watch_fanout",
            "cross_metric",
        }


class TestDeterminism:
    def test_same_inputs_same_plan(self):
        a, b = _plan("mixed", seed=5), _plan("mixed", seed=5)
        assert a.ops == b.ops
        assert a.setup_edges == b.setup_edges

    def test_seed_changes_the_stream(self):
        assert _plan("mixed", seed=1).ops != _plan("mixed", seed=2).ops


class TestMixRatios:
    @pytest.mark.parametrize(
        "name,expected",
        [("read_heavy", 0.05), ("mixed", 0.15), ("write_heavy", 0.50)],
    )
    def test_write_share_tracks_profile(self, name, expected):
        plan = _plan(name)
        share = plan.writes / len(plan.ops)
        assert abs(share - expected) < 0.04
        assert plan.reads + plan.writes == len(plan.ops)

    def test_watch_fanout_mixes_watch_cycles_into_reads(self):
        plan = _plan("watch_fanout")
        watches = sum(1 for op in plan.ops if op.op == "watch_cycle")
        reads = plan.reads
        assert abs(watches / reads - 0.40) < 0.05
        assert abs(plan.writes / len(plan.ops) - 0.10) < 0.03


class TestMutationPools:
    def test_deletes_only_target_the_setup_pool(self):
        plan = _plan("write_heavy")
        deletes = [
            (op.fields["u"], op.fields["v"])
            for op in plan.ops
            if op.op == "update" and op.fields["action"] == "delete"
        ]
        # Every delete consumes a distinct pre-inserted edge -- the
        # guarantee that makes concurrent-worker reordering error-free.
        assert len(set(deletes)) == len(deletes)
        assert set(deletes) == set(plan.setup_edges)

    def test_inserts_never_collide_with_the_delete_pool(self):
        plan = _plan("write_heavy")
        inserts = {
            (op.fields["u"], op.fields["v"])
            for op in plan.ops
            if op.op == "update" and op.fields["action"] == "insert"
        }
        assert inserts.isdisjoint(plan.setup_edges)

    def test_distinct_edge_bases_touch_disjoint_pools(self):
        a = _plan("write_heavy", edge_base=LOADGEN_EDGE_BASE)
        b = _plan("write_heavy", edge_base=LOADGEN_EDGE_BASE + 10_000_000)
        def edges(plan):
            return {
                (op.fields["u"], op.fields["v"])
                for op in plan.ops
                if op.op == "update"
            }
        assert edges(a).isdisjoint(edges(b))

    def test_mutation_edges_live_above_the_base(self):
        for u, v in mutation_edges(100, base=LOADGEN_EDGE_BASE):
            assert u >= LOADGEN_EDGE_BASE and v >= LOADGEN_EDGE_BASE


class TestQueryShapes:
    def test_reads_draw_from_the_profile_grid(self):
        profile = PROFILES["mixed"]
        plan = _plan("mixed")
        grid = set(profile.query_grid)
        seen = set()
        for op in plan.ops:
            if op.op == "topk":
                pair = (op.fields["k"], op.fields["tau"])
                assert pair in grid
                seen.add(pair)
        assert seen == grid  # 4000 ops: every grid cell gets exercised

    def test_ops_are_sorted_by_deadline(self):
        plan = _plan("mixed")
        deadlines = [op.deadline for op in plan.ops]
        assert deadlines == sorted(deadlines)
        assert plan.duration == deadlines[-1]
