"""Arrival schedules are pure functions: no clock, exact assertions."""

import pytest

from repro.loadgen.schedule import (
    MAX_ARRIVALS,
    Stage,
    arrival_times,
    burst,
    constant,
    poisson,
    ramp,
    total_duration,
)


class TestStageValidation:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            Stage(duration=0.0, rate=10.0)
        with pytest.raises(ValueError):
            Stage(duration=-1.0, rate=10.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            Stage(duration=1.0, rate=-1.0)
        with pytest.raises(ValueError):
            Stage(duration=1.0, rate=5.0, end_rate=-2.0)

    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError):
            Stage(duration=1.0, rate=5.0, process="uniform")

    def test_final_rate_and_expected_arrivals(self):
        flat = constant(100.0, 2.0)
        assert flat.final_rate == 100.0
        assert flat.expected_arrivals == 200.0
        sloped = ramp(0.0, 100.0, 2.0)
        assert sloped.final_rate == 100.0
        assert sloped.expected_arrivals == 100.0  # trapezoid area


class TestConstantProcess:
    def test_exact_count_and_even_spacing(self):
        deadlines = arrival_times([constant(100.0, 1.0)])
        assert len(deadlines) == 100
        assert deadlines[0] == 0.0
        gaps = [b - a for a, b in zip(deadlines, deadlines[1:])]
        assert all(abs(gap - 0.01) < 1e-9 for gap in gaps)

    def test_burst_is_constant_spacing_at_high_rate(self):
        deadlines = arrival_times([burst(1000.0, 0.1)])
        assert len(deadlines) == 100
        assert max(deadlines) < 0.1

    def test_seed_does_not_matter_for_constant(self):
        stages = [constant(50.0, 2.0)]
        assert arrival_times(stages, seed=1) == arrival_times(stages, seed=2)


class TestPoissonProcess:
    def test_deterministic_by_seed(self):
        stages = [poisson(50.0, 10.0)]
        assert arrival_times(stages, seed=7) == arrival_times(stages, seed=7)
        assert arrival_times(stages, seed=7) != arrival_times(stages, seed=8)

    def test_mean_rate_matches_offered_rate(self):
        rate, duration = 200.0, 20.0
        deadlines = arrival_times([poisson(rate, duration)], seed=3)
        # ~4000 arrivals; the count is Poisson(4000), sigma ~63, so a 15%
        # band is a >9-sigma corridor -- deterministic in practice.
        assert abs(len(deadlines) - rate * duration) < 0.15 * rate * duration
        gaps = [b - a for a, b in zip(deadlines, deadlines[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert abs(mean_gap - 1.0 / rate) < 0.15 / rate

    def test_zero_rate_yields_no_arrivals(self):
        assert arrival_times([poisson(0.0, 5.0)], seed=1) == []


class TestRamp:
    def test_constant_ramp_density_increases(self):
        deadlines = arrival_times([ramp(10.0, 50.0, 10.0, process="constant")])
        assert abs(len(deadlines) - 300) <= 1  # trapezoid: (10+50)/2 * 10
        half = 5.0
        first = sum(1 for t in deadlines if t < half)
        second = len(deadlines) - first
        assert second > 1.5 * first  # accelerating arrivals

    def test_poisson_ramp_density_increases(self):
        deadlines = arrival_times(
            [ramp(20.0, 100.0, 10.0, process="poisson")], seed=11
        )
        expected = 600.0
        assert abs(len(deadlines) - expected) < 0.2 * expected
        first = sum(1 for t in deadlines if t < 5.0)
        assert (len(deadlines) - first) > 1.3 * first

    def test_ramp_deadlines_sorted_within_duration(self):
        deadlines = arrival_times(
            [ramp(5.0, 80.0, 4.0, process="constant")]
        )
        assert deadlines == sorted(deadlines)
        assert all(0.0 <= t < 4.0 for t in deadlines)


class TestMultiStage:
    def test_stages_play_back_to_back(self):
        deadlines = arrival_times(
            [constant(10.0, 1.0), constant(20.0, 1.0)]
        )
        assert len(deadlines) == 30
        first = [t for t in deadlines if t < 1.0]
        second = [t for t in deadlines if t >= 1.0]
        assert len(first) == 10 and len(second) == 20
        assert deadlines == sorted(deadlines)

    def test_total_duration_sums_stages(self):
        stages = [constant(1.0, 2.5), poisson(1.0, 1.5)]
        assert total_duration(stages) == 4.0

    def test_arrival_cap_fails_loudly(self):
        with pytest.raises(ValueError, match="exceeds"):
            arrival_times([constant(float(2 * MAX_ARRIVALS), 1.0)])
