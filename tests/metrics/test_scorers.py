"""The scorer registry: contract, parity with specialized paths, memos."""

import pytest

from repro.core import build_index_fast
from repro.core.diversity import (
    all_edge_structural_diversities,
    edge_structural_diversity,
)
from repro.core.maintenance import DynamicESDIndex
from repro.analytics.betweenness import (
    all_edge_ego_betweenness,
    edge_betweenness,
)
from repro.analytics.truss import truss_numbers
from repro.graph import Graph, paper_example_graph
from repro.graph.graph import canonical_edge
from repro.metrics import (
    DEFAULT_METRIC,
    EsdScorer,
    MetricScorer,
    get_metric,
    metric_names,
    rank_edges,
    register_metric,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {
            "esd",
            "truss",
            "betweenness",
            "betweenness_global",
            "common_neighbors",
        } <= set(metric_names())
        assert DEFAULT_METRIC == "esd"

    def test_unknown_metric_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown metric 'pagerank'"):
            get_metric("pagerank")
        with pytest.raises(ValueError, match="esd"):
            get_metric("pagerank")

    def test_duplicate_registration_requires_replace(self):
        scorer = get_metric("esd")
        with pytest.raises(ValueError, match="already registered"):
            register_metric(EsdScorer())
        # replace=True swaps, and we restore the original right after.
        replacement = EsdScorer()
        assert register_metric(replacement, replace=True) is replacement
        register_metric(scorer, replace=True)
        assert get_metric("esd") is scorer

    def test_name_must_be_identifier(self):
        class Bad(MetricScorer):
            name = "not a name"

        with pytest.raises(ValueError, match="identifier"):
            register_metric(Bad())

    def test_describe_is_json_ready(self):
        assert get_metric("esd").describe() == {"name": "esd", "uses_tau": True}
        assert get_metric("truss").describe()["uses_tau"] is False


class TestRankEdges:
    def test_orders_by_score_then_edge(self):
        scores = {(1, 2): 3, (0, 1): 3, (2, 3): 5}
        assert rank_edges(scores, 3) == [
            ((2, 3), 5), ((0, 1), 3), ((1, 2), 3),
        ]

    def test_mixed_label_ties_do_not_raise(self):
        # int and str vertices live in disjoint components; a tie across
        # them compared raw tuples before the type-tagged key existed.
        scores = {(1, 2): 1, ("a", "b"): 1, (3, 4): 1}
        ranked = rank_edges(scores, 3)
        assert [edge for edge, _ in ranked] == [(1, 2), (3, 4), ("a", "b")]

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            rank_edges({(0, 1): 1}, 0)


class TestEsdScorer:
    def test_topk_parity_with_fresh_index(self, fig1):
        scorer = get_metric("esd")
        fresh = build_index_fast(fig1)
        for k, tau in [(1, 1), (5, 1), (10, 2), (3, 3)]:
            via_graph = scorer.topk(fig1, k, tau=tau)
            assert dict(via_graph) == dict(fresh.topk(k, tau))

    def test_with_index_is_the_serving_path_verbatim(self, fig1):
        # With `index` the scorer must return the index's own answer
        # object-for-object: metric=esd is bit-identical to the
        # pre-registry serving path.
        dyn = DynamicESDIndex(fig1)
        scorer = get_metric("esd")
        assert scorer.topk(fig1, 5, tau=2, index=dyn) == dyn.topk(5, 2)
        edge = dyn.topk(1, 2)[0][0]
        assert scorer.score(fig1, edge, tau=2, index=dyn) == dyn.index.score(
            edge, 2
        )

    def test_score_without_index(self, fig1):
        scorer = get_metric("esd")
        u, v = next(iter(fig1.edges()))
        assert scorer.score(fig1, (u, v), tau=2) == edge_structural_diversity(
            fig1, u, v, 2
        )
        assert scorer.score(fig1, ("nope", "nada"), tau=2) == 0

    def test_topk_without_index_matches_exhaustive(self, fig1):
        scorer = get_metric("esd")
        assert scorer.topk(fig1, 4, tau=2) == rank_edges(
            all_edge_structural_diversities(fig1, 2), 4
        )


class TestGraphScorers:
    def test_truss_scores_and_topk(self, k4):
        scorer = get_metric("truss")
        numbers = truss_numbers(k4)
        for edge in k4.edges():
            assert scorer.score(k4, edge) == numbers[canonical_edge(*edge)]
        assert dict(scorer.topk(k4, 6)) == numbers
        assert scorer.score(k4, (0, 99)) == 0

    def test_betweenness_is_ego_betweenness(self, path4):
        scorer = get_metric("betweenness")
        table = all_edge_ego_betweenness(path4)
        top = scorer.topk(path4, 3)
        assert dict(top) == table
        # The middle edge of a path bridges the most 2-hop pairs.
        assert top[0][0] == (1, 2)
        # score() answers locally, without building the table.
        for edge, value in top:
            assert scorer.score(path4, edge) == value
        assert scorer.score(path4, (0, 3)) == 0.0

    def test_betweenness_global_is_brandes(self, path4):
        scorer = get_metric("betweenness_global")
        table = edge_betweenness(path4)
        top = scorer.topk(path4, 3)
        assert dict(top) == pytest.approx(table)
        # The middle edge of a path carries the most shortest paths.
        assert top[0][0] == (1, 2)
        assert scorer.score(path4, (0, 3)) == 0.0

    def test_common_neighbors(self, k4):
        scorer = get_metric("common_neighbors")
        assert all(score == 2 for _, score in scorer.topk(k4, 6))
        assert scorer.score(k4, (0, 1)) == 2
        assert scorer.score(k4, (0, 99)) == 0

    def test_common_neighbors_score_skips_the_memo(self, k4):
        # A point query is O(min-degree); it must not pay for (or
        # populate) the whole-graph topk table.
        from repro.metrics import CommonNeighborsScorer

        scorer = CommonNeighborsScorer()
        assert scorer.score(k4, (0, 1)) == 2
        assert scorer._memo.computes == 0
        scorer.topk(k4, 2)
        assert scorer._memo.computes == 1


class TestRevisionMemo:
    def test_mutation_recomputes_after_revision_bump(self):
        scorer = get_metric("truss")
        graph = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        assert scorer.score(graph, (0, 1)) == 4
        graph.remove_edge(2, 3)
        # Same graph object, new revision: the memo must not serve the
        # stale table.
        assert scorer.score(graph, (0, 1)) == 3

    def test_on_mutation_invalidates_without_breaking_reads(self, k4):
        scorer = get_metric("betweenness")
        before = scorer.topk(k4, 3)
        scorer.on_mutation("insert", (0, 1), 1)
        assert scorer.topk(k4, 3) == before

    def test_two_graphs_do_not_cross_contaminate(self):
        scorer = get_metric("truss")
        k4 = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        triangle = Graph([(0, 1), (1, 2), (0, 2)])
        assert scorer.score(k4, (0, 1)) == 4
        assert scorer.score(triangle, (0, 1)) == 3
        assert scorer.score(k4, (0, 1)) == 4
