"""Single-flight memoization: one compute per stale revision, ever.

The stampede test holds the leader's computation open on an event while
the other threads arrive, so the ``waits``/``stampedes_avoided``
counters are exercised deterministically instead of depending on
scheduler timing.
"""

from __future__ import annotations

import threading
import time

from repro.graph.graph import Graph
from repro.metrics import TrussScorer
from repro.metrics.scorers import _RevisionMemo

THREADS = 8


def test_stampede_serves_every_waiter_from_one_compute():
    release = threading.Event()
    compute_calls = []

    def compute(graph, prev):
        compute_calls.append(threading.get_ident())
        assert release.wait(10.0), "test deadlock: release never set"
        return {"revision": graph.revision}

    memo = _RevisionMemo(compute)
    graph = Graph([("a", "b")])
    results = []

    def query() -> None:
        results.append(memo.get(graph))

    threads = [
        threading.Thread(target=query) for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    # Let the leader enter compute and every follower block on the
    # condition variable before releasing; the waits counter is bumped
    # *before* a follower sleeps, so polling it is race-free.
    deadline = time.monotonic() + 10.0
    while memo.waits < THREADS - 1 and time.monotonic() < deadline:
        time.sleep(0.005)
    release.set()
    for thread in threads:
        thread.join(timeout=10.0)

    assert len(compute_calls) == 1
    assert results == [{"revision": graph.revision}] * THREADS
    stats = memo.stats()
    assert stats["computes"] == 1
    assert stats["waits"] == THREADS - 1
    assert stats["stampedes_avoided"] == THREADS - 1


def test_one_compute_per_revision_without_a_gate():
    # Whatever the interleaving -- all-waiting, all-sequential, or a mix
    # -- a revision is computed exactly once.
    graph = Graph([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    scorer = TrussScorer()
    for round_no in range(3):
        before = scorer._memo.computes
        threads = [
            threading.Thread(target=lambda: scorer.topk(graph, 2))
            for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert scorer._memo.computes == before + 1
        graph.add_edge("d", f"e{round_no}")  # stale the next round


def test_failed_compute_releases_the_flight():
    boom = [True]

    def compute(graph, prev):
        if boom[0]:
            raise RuntimeError("transient")
        return {"ok": True}

    memo = _RevisionMemo(compute)
    graph = Graph([("a", "b")])
    try:
        memo.get(graph)
    except RuntimeError:
        pass
    else:
        raise AssertionError("expected the compute error to propagate")
    boom[0] = False
    # The failed flight must not wedge the memo: the next query leads.
    assert memo.get(graph) == {"ok": True}
    assert memo.stats()["computes"] == 2
