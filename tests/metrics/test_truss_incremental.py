"""Incremental truss maintenance ≡ from-scratch recompute, on replayed traces.

The scorer's contract is exact: after *any* interleaving of edge/vertex
mutations, the memoized table a query is served from must equal the
truss decomposition of the current graph computed from scratch by the
set-based reference.  Every trial derives from one integer seed, and a
failing trace is delta-debugged down to a minimal still-failing op list
before the test fails.

A deterministic clustered-graph test additionally pins that the
maintenance really runs the *re-peel* path (``truss_repeels`` moves,
not just ``truss_rebuilds``) -- without it, a bug that silently forced
full rebuilds on every mutation would still pass the equality property.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analytics.truss import truss_numbers
from repro.graph.generators import planted_partition
from repro.graph.graph import Graph, canonical_edge
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.dispatch import use_kernels
from repro.metrics import TrussScorer

Op = Tuple  # ("+e", u, v) | ("-e", u, v) | ("-v", u)

NUM_TRIALS = 20


@dataclass
class Case:
    """One reproducible trial: an initial graph plus a mutation trace."""

    seed: int
    edges: List[Tuple[str, str]]
    ops: List[Op]

    def describe(self) -> str:
        return (
            f"seed={self.seed} edges={self.edges!r} ops={self.ops!r}"
        )


def generate_case(seed: int) -> Case:
    rng = random.Random(seed)
    n = rng.randint(8, 26)
    p = rng.uniform(0.15, 0.5)
    labels = [f"v{i:03d}" for i in range(n)]
    edges: List[Tuple[str, str]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.append((labels[i], labels[j]))
    ops: List[Op] = []
    for _ in range(rng.randint(5, 30)):
        roll = rng.random()
        u, v = rng.sample(labels, 2)
        if roll < 0.45:
            ops.append(("+e", u, v))
        elif roll < 0.9:
            ops.append(("-e", u, v))
        else:
            ops.append(("-v", u))
    return Case(seed=seed, edges=edges, ops=ops)


def _apply(graph: Graph, op: Op) -> None:
    """Replay one op; guards make traces valid under any shrinking."""
    tag = op[0]
    if tag == "+e":
        if op[1] != op[2]:
            graph.add_edge(op[1], op[2])
    elif tag == "-e":
        if graph.has_edge(op[1], op[2]):
            graph.remove_edge(op[1], op[2])
    elif tag == "-v":
        if op[1] in graph:
            graph.remove_vertex(op[1])


def _served_table(scorer: TrussScorer, graph: Graph) -> dict:
    """The table queries are answered from, via the public surface."""
    return {
        canonical_edge(u, v): scorer.score(graph, (u, v))
        for u, v in graph.edges()
    }


def check_case(case: Case) -> Optional[str]:
    graph = Graph(case.edges)
    with use_kernels("csr"):
        scorer = TrussScorer()
        scorer.topk(graph, 3)  # prime: every later query patches this
        for step, op in enumerate(case.ops):
            _apply(graph, op)
            served = _served_table(scorer, graph)
            with use_kernels("set"):
                expected = truss_numbers(graph)
            if served != expected:
                return (
                    f"step {step} ({op!r}): served={served!r} "
                    f"expected={expected!r}"
                )
    return None


def shrink_case(case: Case, *, max_attempts: int = 200) -> Case:
    """Delta-debug the op trace down to a minimal still-failing case."""
    attempts = 0

    def still_fails(ops: List[Op]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return (
            check_case(Case(seed=case.seed, edges=case.edges, ops=ops))
            is not None
        )

    ops = list(case.ops)
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        i = 0
        while i < len(ops):
            candidate = ops[:i] + ops[i + chunk :]
            if candidate != ops and still_fails(candidate):
                ops = candidate
            else:
                i += chunk
        chunk //= 2
    return Case(seed=case.seed, edges=case.edges, ops=ops)


def test_incremental_truss_equals_scratch_on_replayed_traces():
    KERNEL_COUNTERS.reset()
    for seed in range(NUM_TRIALS):
        case = generate_case(seed)
        failure = check_case(case)
        if failure is None:
            continue
        shrunk = shrink_case(case)
        final = check_case(shrunk) or failure
        raise AssertionError(
            f"incremental truss diverged: {final}\n"
            f"  original: {case.describe()}\n"
            f"  shrunk:   {shrunk.describe()}"
        )
    # The property must have exercised *both* maintenance paths across
    # the trial set: patches on local mutations, rebuilds past the
    # thresholds.  All-rebuild (or all-patch) means the policy is dead.
    assert KERNEL_COUNTERS.truss_repeels > 0
    assert KERNEL_COUNTERS.truss_rebuilds > 0


def test_community_local_mutation_takes_the_repeel_path():
    # Dense communities, no cross edges: a mutation's triangle-connected
    # region is its own community, far under the region limit, so the
    # scorer must patch -- and the patched table must still be exact.
    graph = planted_partition(6, 12, 0.6, 0.0, seed=5)
    probe = next(iter(sorted(graph.edges())))
    with use_kernels("csr"):
        scorer = TrussScorer()
        scorer.topk(graph, 5)
        KERNEL_COUNTERS.reset()
        graph.remove_edge(*probe)
        scorer.topk(graph, 5)
        graph.add_edge(*probe)
        scorer.topk(graph, 5)
        assert KERNEL_COUNTERS.truss_repeels == 2
        assert KERNEL_COUNTERS.truss_rebuilds == 0
        served = _served_table(scorer, graph)
    with use_kernels("set"):
        assert served == truss_numbers(graph)


def test_out_of_window_changelog_falls_back_to_rebuild():
    graph = Graph([("a", "b"), ("b", "c"), ("a", "c")])
    with use_kernels("csr"):
        scorer = TrussScorer()
        scorer.topk(graph, 3)
        # Blow far past the changelog window between queries.
        for i in range(600):
            graph.add_edge("x", f"y{i}")
        for i in range(600):
            graph.remove_edge("x", f"y{i}")
        KERNEL_COUNTERS.reset()
        scorer.topk(graph, 3)
        assert KERNEL_COUNTERS.truss_rebuilds == 1
        assert KERNEL_COUNTERS.truss_repeels == 0
        served = _served_table(scorer, graph)
    with use_kernels("set"):
        assert served == truss_numbers(graph)
