"""Keep the process-wide tracer clean around every obs test."""

import pytest

from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def _reset_global_tracer():
    """Any test that configures ``TRACER`` leaves it disabled again."""
    yield
    TRACER.disable()
