"""End-to-end tracing through the serving stack.

The acceptance bar: with tracing enabled, one uncontended ``topk``
produces a single span tree covering batcher -> cache -> index, and a
durable ``update`` shows the WAL append inside the engine span.
"""

import pytest

from repro.obs.sinks import CollectingSink, span_tree
from repro.obs.trace import TRACER
from repro.persistence.store import DataDirectory
from repro.service.engine import QueryEngine


@pytest.fixture
def sink():
    sink = CollectingSink()
    TRACER.configure(sink)
    yield sink
    TRACER.disable()


def _tree(sink):
    return span_tree(sink.records)


def _children(tree, record):
    return tree.get(record["span_id"], [])


class TestTopKSpanTree:
    def test_single_topk_covers_batcher_cache_index(self, fig1, sink):
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.topk(5, 2)
        records = sink.records
        (root,) = [r for r in records if r["parent_id"] is None]
        assert root["name"] == "engine.topk"
        assert root["attrs"]["cache"] == "miss"
        # One trace end to end.
        assert {r["trace_id"] for r in records} == {root["trace_id"]}
        tree = _tree(sink)
        (submit,) = _children(tree, root)
        assert submit["name"] == "batcher.submit"
        assert submit["attrs"]["role"] == "leader"
        (batch,) = _children(tree, submit)
        assert batch["name"] == "engine.batch"
        assert batch["attrs"]["cache_hits"] == 0
        (index,) = _children(tree, batch)
        assert index["name"] == "index.topk"
        assert index["attrs"]["k"] == 5 and index["attrs"]["tau"] == 2

    def test_cache_hit_skips_the_index(self, fig1, sink):
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.topk(5, 2)
        sink.clear()
        engine.topk(5, 2)
        names = [r["name"] for r in sink.records]
        assert "index.topk" not in names
        (root,) = [r for r in sink.records if r["parent_id"] is None]
        assert root["attrs"]["cache"] == "hit"


class TestUpdateSpanTree:
    def test_update_traces_maintenance(self, fig1, sink):
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.update("insert", "a", "p")
        tree = _tree(sink)
        (root,) = tree[None]
        assert root["name"] == "engine.update"
        assert root["attrs"]["action"] == "insert"
        assert root["attrs"]["edges_rescored"] >= 1
        (insert,) = _children(tree, root)
        assert insert["name"] == "index.insert_edge"

    def test_durable_update_includes_wal_append(self, fig1, sink, tmp_path):
        store = DataDirectory(tmp_path / "data")
        dyn, _ = store.open(bootstrap_graph=fig1)
        sink.clear()  # drop the bootstrap snapshot spans
        engine = QueryEngine(
            dynamic_index=dyn, store=store, batch_window=0.0
        )
        engine.update("delete", "a", "b")
        tree = _tree(sink)
        (root,) = tree[None]
        assert root["name"] == "engine.update"
        names = {c["name"] for c in _children(tree, root)}
        assert names == {"wal.append", "index.delete_edge"}
        engine.close()


class TestOverheadIsolation:
    def test_disabled_tracer_emits_nothing_from_engine(self, fig1):
        TRACER.disable()
        sink = CollectingSink()
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.topk(5, 2)
        engine.update("insert", "a", "p")
        assert sink.records == []
        assert engine.metrics_snapshot()["tracing"]["enabled"] is False
