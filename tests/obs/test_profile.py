"""profile_cycle tests: stage coverage, span attribution, counters."""

import pytest

from repro.obs.profile import STAGES, profile_cycle
from repro.obs.trace import Tracer
from repro.obs.sinks import CollectingSink


@pytest.fixture
def report(fig1):
    # The default (process-wide) tracer: the core/persistence
    # instrumentation emits there, so the report sees the child spans.
    return profile_cycle(fig1, k=5, tau=2, repeat=2, updates=3)


class TestProfileCycle:
    def test_all_stages_present_with_durations(self, report):
        assert set(report.stages) == set(STAGES)
        for stage in STAGES:
            assert report.stages[stage]["total_ms"] >= 0

    def test_stage_span_attribution(self, report):
        # query: 2 indexed topk + 1 online run; update: 3 deletes + 3 inserts.
        assert report.stages["query"]["spans"] == 3
        assert report.stages["update"]["spans"] == 6
        assert report.stages["persist"]["spans"] >= 3  # snapshot + appends

    def test_span_aggregates_cover_hot_operations(self, report):
        names = {agg["name"] for agg in report.span_aggregates}
        assert {
            "index.topk", "index.insert_edge", "index.delete_edge",
            "wal.append", "store.snapshot",
        } <= names
        topk = next(a for a in report.span_aggregates if a["name"] == "index.topk")
        assert topk["count"] == 2
        # Both fields are independently rounded to 4 decimal places.
        assert topk["mean_ms"] == pytest.approx(topk["total_ms"] / 2, abs=1e-4)

    def test_counters_fold_core_and_online_groups(self, report):
        assert report.counters["core.insertions"] == 3
        assert report.counters["core.deletions"] == 3
        assert report.counters["core.edges_rescored"] > 0
        assert report.counters["online.bound_evaluations"] > 0
        assert "online.heap_stale_skips" in report.counters

    def test_kernel_counters_reported_as_cycle_deltas(self, fig1):
        from repro.kernels.dispatch import use_kernels

        with use_kernels("csr"):
            report = profile_cycle(fig1, k=5, tau=2, repeat=1, updates=2)
        kernel_keys = [
            key for key in report.counters if key.startswith("kernels.")
        ]
        assert kernel_keys  # the cycle's build/online pass ran kernels
        assert all(report.counters[key] > 0 for key in kernel_keys)
        with use_kernels("set"):
            report = profile_cycle(fig1, k=5, tau=2, repeat=1, updates=2)
        # Deltas, not process-wide totals: the set-mode cycle adds none.
        assert not any(
            key.startswith("kernels.") for key in report.counters
        )

    def test_render_is_printable(self, report):
        text = report.render()
        for stage in STAGES:
            assert stage in text
        assert "counters:" in text
        assert "core.edges_rescored" in text

    def test_graph_left_intact(self, fig1):
        before = sorted(fig1.edge_list())
        profile_cycle(fig1, repeat=1, updates=4)
        assert sorted(fig1.edge_list()) == before

    def test_restores_tracer_state(self, fig1):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        profile_cycle(fig1, repeat=1, updates=0, tracer=tracer)
        assert tracer.enabled is True
        assert tracer.sink is sink
        # And a fully disabled tracer stays disabled afterwards.
        fresh = Tracer()
        profile_cycle(fig1, repeat=1, updates=0, tracer=fresh)
        assert fresh.enabled is False
        assert fresh.sink is None

    def test_parameter_validation(self, fig1):
        for bad in [
            {"k": 0}, {"tau": 0}, {"repeat": 0}, {"updates": -1},
        ]:
            with pytest.raises(ValueError):
                profile_cycle(fig1, tracer=Tracer(), **bad)
