"""Prometheus text-exposition renderer tests."""

from repro.obs.promtext import http_metrics_response, render_prometheus


def test_nested_counters_flatten_with_underscores():
    text = render_prometheus(
        {"counters": {"rejected_overload": 3, "cache": {"hits": 7}}}
    )
    assert "esd_counters_rejected_overload 3\n" in text
    assert "esd_counters_cache_hits 7\n" in text


def test_booleans_render_as_gauges():
    text = render_prometheus({"connected": True, "evicted": False})
    assert "esd_connected 1\n" in text
    assert "esd_evicted 0\n" in text


def test_strings_none_and_lists_are_skipped():
    text = render_prometheus(
        {
            "role": "replica",
            "lag": None,
            "slow_queries": [{"op": "topk", "ms": 900}],
            "kept": 1,
        }
    )
    assert "replica" not in text
    assert "slow_queries" not in text
    assert "lag" not in text
    assert text == "esd_kept 1\n"


def test_endpoints_render_with_labels():
    text = render_prometheus(
        {
            "endpoints": {
                "topk": {"requests": 5, "p50_ms": 1.25, "note": "hi"},
                "score": {"requests": 2},
            }
        }
    )
    assert 'esd_endpoint_requests{endpoint="topk"} 5' in text
    assert 'esd_endpoint_p50_ms{endpoint="topk"} 1.25' in text
    assert 'esd_endpoint_requests{endpoint="score"} 2' in text
    assert "note" not in text


def test_label_values_escaped():
    text = render_prometheus(
        {"endpoints": {'we"ird': {"requests": 1}}}
    )
    assert 'endpoint="we\\"ird"' in text


def test_metric_names_sanitized():
    text = render_prometheus({"bad key": {"9lives": 1}})
    assert "esd_bad_key__9lives 1\n" in text


def test_special_floats():
    text = render_prometheus({"nan": float("nan"), "inf": float("inf")})
    assert "esd_nan NaN" in text
    assert "esd_inf +Inf" in text


def test_deterministic_ordering():
    snapshot = {"b": 2, "a": 1, "c": {"y": 4, "x": 3}}
    assert render_prometheus(snapshot) == render_prometheus(dict(snapshot))
    assert render_prometheus(snapshot).splitlines() == [
        "esd_a 1", "esd_b 2", "esd_c_x 3", "esd_c_y 4",
    ]


def test_http_wrapper_headers_and_length():
    body = "esd_up 1\n"
    raw = http_metrics_response(body)
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.0 200 OK")
    assert b"Content-Type: text/plain; version=0.0.4; charset=utf-8" in head
    assert b"Content-Length: %d" % len(payload) in head
    assert payload == body.encode()
