"""Prometheus text-exposition renderer and parser tests.

The parser exists for the loadgen harness (scrape before/after a run,
fold the deltas), so the contract pinned here is the round trip: every
sample the renderer emits -- including escaped label values and special
floats -- comes back intact, and garbage in the input is skipped rather
than fatal.
"""

import math

from repro.obs.promtext import (
    Sample,
    http_metrics_response,
    parse_prometheus,
    render_prometheus,
    samples_by_name,
)


def test_nested_counters_flatten_with_underscores():
    text = render_prometheus(
        {"counters": {"rejected_overload": 3, "cache": {"hits": 7}}}
    )
    assert "esd_counters_rejected_overload 3\n" in text
    assert "esd_counters_cache_hits 7\n" in text


def test_booleans_render_as_gauges():
    text = render_prometheus({"connected": True, "evicted": False})
    assert "esd_connected 1\n" in text
    assert "esd_evicted 0\n" in text


def test_strings_none_and_lists_are_skipped():
    text = render_prometheus(
        {
            "role": "replica",
            "lag": None,
            "slow_queries": [{"op": "topk", "ms": 900}],
            "kept": 1,
        }
    )
    assert "replica" not in text
    assert "slow_queries" not in text
    assert "lag" not in text
    assert text == "esd_kept 1\n"


def test_endpoints_render_with_labels():
    text = render_prometheus(
        {
            "endpoints": {
                "topk": {"requests": 5, "p50_ms": 1.25, "note": "hi"},
                "score": {"requests": 2},
            }
        }
    )
    assert 'esd_endpoint_requests{endpoint="topk"} 5' in text
    assert 'esd_endpoint_p50_ms{endpoint="topk"} 1.25' in text
    assert 'esd_endpoint_requests{endpoint="score"} 2' in text
    assert "note" not in text


def test_label_values_escaped():
    text = render_prometheus(
        {"endpoints": {'we"ird': {"requests": 1}}}
    )
    assert 'endpoint="we\\"ird"' in text


def test_metric_names_sanitized():
    text = render_prometheus({"bad key": {"9lives": 1}})
    assert "esd_bad_key__9lives 1\n" in text


def test_special_floats():
    text = render_prometheus({"nan": float("nan"), "inf": float("inf")})
    assert "esd_nan NaN" in text
    assert "esd_inf +Inf" in text


def test_deterministic_ordering():
    snapshot = {"b": 2, "a": 1, "c": {"y": 4, "x": 3}}
    assert render_prometheus(snapshot) == render_prometheus(dict(snapshot))
    assert render_prometheus(snapshot).splitlines() == [
        "esd_a 1", "esd_b 2", "esd_c_x 3", "esd_c_y 4",
    ]


def test_http_wrapper_headers_and_length():
    body = "esd_up 1\n"
    raw = http_metrics_response(body)
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.0 200 OK")
    assert b"Content-Type: text/plain; version=0.0.4; charset=utf-8" in head
    assert b"Content-Length: %d" % len(payload) in head
    assert payload == body.encode()


class TestParser:
    def test_plain_and_labelled_samples(self):
        samples = parse_prometheus(
            "esd_graph_version 5\n"
            'esd_endpoint_requests{endpoint="topk"} 12\n'
        )
        assert samples == [
            Sample("esd_graph_version", (), 5.0),
            Sample(
                "esd_endpoint_requests", (("endpoint", "topk"),), 12.0
            ),
        ]
        assert samples[1].labels_dict == {"endpoint": "topk"}

    def test_multiple_labels_sorted_and_timestamp_ignored(self):
        (sample,) = parse_prometheus(
            'up{job="esd", instance="replica-0"} 1 1712345678901\n'
        )
        assert sample.labels == (
            ("instance", "replica-0"), ("job", "esd"),
        )
        assert sample.value == 1.0

    def test_special_float_values(self):
        samples = {
            s.name: s.value
            for s in parse_prometheus(
                "a +Inf\nb -Inf\nc NaN\nd 1.5e3\n"
            )
        }
        assert samples["a"] == math.inf
        assert samples["b"] == -math.inf
        assert math.isnan(samples["c"])
        assert samples["d"] == 1500.0

    def test_label_escapes_decoded(self):
        (sample,) = parse_prometheus(
            'm{endpoint="we\\"ird\\\\path\\nline"} 1\n'
        )
        assert sample.labels_dict["endpoint"] == 'we"ird\\path\nline'

    def test_tolerates_comments_blanks_and_garbage(self):
        samples = parse_prometheus(
            "# HELP esd_up is the node up\n"
            "# TYPE esd_up gauge\n"
            "\n"
            "this is not a metric line at all {{{\n"
            "esd_up notanumber\n"
            'esd_bad{unclosed="value} 1\n'
            "esd_up 1\n"
        )
        assert samples == [Sample("esd_up", (), 1.0)]

    def test_samples_by_name_indexes_and_last_wins(self):
        table = samples_by_name(
            parse_prometheus("a 1\na 2\nb{x=\"y\"} 3\n")
        )
        assert table["a"][()] == 2.0
        assert table["b"][(("x", "y"),)] == 3.0


class TestRoundTrip:
    def test_renderer_output_parses_losslessly(self):
        snapshot = {
            "graph_version": 7,
            "counters": {"cache": {"hits": 3}, "inflight": 0},
            "connected": True,
            "skip_me": "string",
            "endpoints": {
                "topk": {"requests": 5, "p99_ms": 1.25},
                'we"ird\\name\nhere': {"requests": 2},
            },
        }
        text = render_prometheus(snapshot)
        table = samples_by_name(parse_prometheus(text))
        assert table["esd_graph_version"][()] == 7.0
        assert table["esd_counters_cache_hits"][()] == 3.0
        assert table["esd_counters_inflight"][()] == 0.0
        assert table["esd_connected"][()] == 1.0
        assert "esd_skip_me" not in table
        endpoint_requests = table["esd_endpoint_requests"]
        assert endpoint_requests[(("endpoint", "topk"),)] == 5.0
        # The pathological endpoint name survives escape + unescape.
        assert endpoint_requests[
            (("endpoint", 'we"ird\\name\nhere'),)
        ] == 2.0
        assert table["esd_endpoint_p99_ms"][(("endpoint", "topk"),)] == 1.25

    def test_special_floats_round_trip(self):
        text = render_prometheus({"nan": float("nan"), "inf": float("inf")})
        table = samples_by_name(parse_prometheus(text))
        assert table["esd_inf"][()] == math.inf
        assert math.isnan(table["esd_nan"][()])

    def test_sample_count_matches_rendered_lines(self):
        snapshot = {"a": 1, "b": {"c": 2.5}, "d": False}
        text = render_prometheus(snapshot)
        assert len(parse_prometheus(text)) == len(text.strip().splitlines())
