"""Dimensioned endpoint names (``name|key=value``) as Prometheus labels."""

from repro.obs.promtext import (
    parse_prometheus,
    render_prometheus,
    samples_by_name,
)


def _render(endpoints):
    return render_prometheus({"endpoints": endpoints})


def test_metric_part_becomes_a_label():
    text = _render(
        {
            "topk": {"requests": 5},
            "topk|metric=truss": {"requests": 2},
        }
    )
    assert 'esd_endpoint_requests{endpoint="topk"} 5' in text
    assert 'esd_endpoint_requests{endpoint="topk",metric="truss"} 2' in text


def test_multiple_parts_sort_into_stable_label_order():
    text = _render({"topk|tau=2|metric=esd": {"requests": 1}})
    assert (
        'esd_endpoint_requests{endpoint="topk",metric="esd",tau="2"} 1'
        in text
    )


def test_malformed_parts_fall_back_to_whole_name_label():
    for name in (
        "topk|notapair",        # no '='
        "topk|=value",          # empty key
        "topk|metric=",         # empty value
        "topk|bad key=x",       # key not an identifier
        "topk|endpoint=evil",   # would shadow the endpoint label
    ):
        text = _render({name: {"requests": 1}})
        escaped = name.replace("\\", "\\\\").replace('"', '\\"')
        assert f'esd_endpoint_requests{{endpoint="{escaped}"}} 1' in text


def test_label_values_are_escaped():
    text = _render({'topk|metric=we"ird': {"requests": 1}})
    assert 'metric="we\\"ird"' in text


def test_round_trips_through_the_parser():
    text = _render(
        {
            "topk": {"requests": 7},
            "topk|metric=betweenness": {"requests": 3},
        }
    )
    table = samples_by_name(parse_prometheus(text))
    requests = table["esd_endpoint_requests"]
    assert requests[(("endpoint", "topk"),)] == 7.0
    assert requests[
        (("endpoint", "topk"), ("metric", "betweenness"))
    ] == 3.0
