"""UnifiedRegistry composition and SlowQueryLog ring-buffer tests."""

import pytest

from repro.obs.registry import UnifiedRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.service.metrics import MetricsRegistry


class TestUnifiedRegistry:
    def test_standalone_snapshot_is_sources_only(self):
        registry = UnifiedRegistry()
        registry.add_source("cache", lambda: {"hits": 3})
        registry.add_source("scalar", lambda: 7)
        assert registry.snapshot() == {"cache": {"hits": 3}, "scalar": 7}

    def test_wraps_base_metrics_registry(self):
        metrics = MetricsRegistry()
        registry = UnifiedRegistry(metrics)
        registry.incr("requests", 2)
        registry.add_source("extra", lambda: {"x": 1})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"requests": 2}
        assert snapshot["extra"] == {"x": 1}
        assert "endpoints" in snapshot

    def test_failing_source_contributes_error_stanza(self):
        registry = UnifiedRegistry()

        def broken():
            raise KeyError("gone")

        registry.add_source("ok", lambda: 1)
        registry.add_source("broken", broken)
        snapshot = registry.snapshot()
        assert snapshot["ok"] == 1
        assert snapshot["broken"] == {"error": "KeyError: 'gone'"}

    def test_sources_polled_lazily_per_snapshot(self):
        registry = UnifiedRegistry()
        counter = {"n": 0}

        def source():
            counter["n"] += 1
            return counter["n"]

        registry.add_source("live", source)
        assert counter["n"] == 0  # registration polls nothing
        assert registry.snapshot()["live"] == 1
        assert registry.snapshot()["live"] == 2

    def test_replace_and_remove_sources(self):
        registry = UnifiedRegistry()
        registry.add_source("a", lambda: 1)
        registry.add_source("a", lambda: 2)  # replaces
        assert registry.snapshot() == {"a": 2}
        assert registry.remove_source("a") is True
        assert registry.remove_source("a") is False
        assert registry.snapshot() == {}

    def test_non_callable_source_rejected(self):
        with pytest.raises(TypeError):
            UnifiedRegistry().add_source("bad", 42)


class TestSlowQueryLog:
    def test_records_only_above_threshold(self):
        log = SlowQueryLog(threshold=0.1, capacity=8)
        assert log.record("topk", 0.05) is False
        assert log.record("topk", 0.2) is True
        (entry,) = log.entries()
        assert entry["endpoint"] == "topk"
        assert entry["duration_ms"] == 200.0

    def test_zero_threshold_disables(self):
        log = SlowQueryLog(threshold=0.0)
        assert log.enabled is False
        assert log.record("topk", 100.0) is False
        assert log.entries() == []

    def test_ring_keeps_most_recent(self):
        log = SlowQueryLog(threshold=0.01, capacity=3)
        for i in range(6):
            log.record(f"op{i}", 0.05)
        endpoints = [e["endpoint"] for e in log.entries()]
        assert endpoints == ["op3", "op4", "op5"]
        assert log.snapshot()["recorded"] == 6  # total ever, not retained

    def test_error_and_detail_recorded(self):
        log = SlowQueryLog(threshold=0.01)
        log.record("update", 0.05, True, action="insert")
        (entry,) = log.entries()
        assert entry["error"] is True
        assert entry["detail"] == {"action": "insert"}

    def test_snapshot_shape(self):
        log = SlowQueryLog(threshold=0.25, capacity=16)
        snapshot = log.snapshot()
        assert snapshot == {
            "enabled": True,
            "threshold_ms": 250.0,
            "capacity": 16,
            "recorded": 0,
            "entries": [],
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_shadows_metrics_registry_observations(self):
        """Wired as the registry hook, slow endpoints land in the log."""
        log = SlowQueryLog(threshold=0.001)
        registry = MetricsRegistry(on_observe=log.record)
        registry.observe("slow_op", 0.5)
        registry.observe("fast_op", 0.0)
        assert [e["endpoint"] for e in log.entries()] == ["slow_op"]
