"""InvariantSampler tests: cadence, detection, strict mode, reporting."""

import pytest

from repro.core import DynamicESDIndex
from repro.obs.sampler import InvariantSampler, InvariantViolation


class TestCadence:
    def test_checks_every_n_mutations(self, fig1):
        dyn = DynamicESDIndex(fig1)
        sampler = InvariantSampler(dyn, every=3)
        ran = [sampler.on_mutation(i) for i in range(1, 7)]
        assert ran == [False, False, True, False, False, True]
        assert sampler.checks == 2
        assert sampler.last_check_version == 6

    def test_wired_through_subscribe(self, fig1):
        """The serve-loop wiring: index mutations drive the sampler."""
        dyn = DynamicESDIndex(fig1)
        sampler = InvariantSampler(dyn, every=2, strict=True)
        dyn.subscribe(lambda kind, edge, ver: sampler.on_mutation(ver))
        dyn.insert_edge("a", "p")
        dyn.delete_edge("a", "p")
        dyn.insert_edge("a", "p")
        dyn.delete_edge("a", "p")
        assert sampler.checks == 2
        assert sampler.violations == []

    def test_validation(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(ValueError):
            InvariantSampler(dyn, every=0)
        with pytest.raises(ValueError):
            InvariantSampler(dyn, every=1, sample_size=0)


class TestDetection:
    def test_healthy_index_passes(self, fig1):
        dyn = DynamicESDIndex(fig1)
        sampler = InvariantSampler(dyn, every=1, sample_size=64, strict=True)
        assert sampler.check_now() == dyn.graph.m  # sample covers all edges
        assert sampler.violations == []

    def test_empty_graph_checks_nothing(self):
        from repro.graph import Graph

        dyn = DynamicESDIndex(Graph())
        sampler = InvariantSampler(dyn, every=1)
        assert sampler.check_now() == 0
        assert sampler.checks == 1

    def _corrupt_one_edge(self, dyn):
        """Silently damage M for some edge that has common neighbors."""
        for edge in dyn.graph.edges():
            m = dyn.components_of(edge)
            if m.members():
                m.add("__ghost__")  # a member recomputation will not have
                return edge
        raise AssertionError("fixture graph has no edge with a 4-clique")

    def test_detects_corruption_and_records(self, fig1):
        dyn = DynamicESDIndex(fig1)
        edge = self._corrupt_one_edge(dyn)
        # Sample all edges so the damaged one is definitely drawn.
        sampler = InvariantSampler(dyn, every=1, sample_size=dyn.graph.m)
        sampler.check_now(version=41)
        assert sampler.violations, "corruption went undetected"
        violation = sampler.violations[0]
        assert violation["edge"] == list(edge)
        assert violation["graph_version"] == 41
        status = sampler.status()
        assert status["violations"] >= 1
        assert status["recent_violations"]

    def test_strict_mode_raises(self, fig1):
        dyn = DynamicESDIndex(fig1)
        edge = self._corrupt_one_edge(dyn)
        sampler = InvariantSampler(
            dyn, every=1, sample_size=dyn.graph.m, strict=True
        )
        with pytest.raises(InvariantViolation) as excinfo:
            sampler.check_now()
        assert excinfo.value.edge == edge
        assert isinstance(excinfo.value, AssertionError)

    def test_violation_history_bounded(self, fig1):
        dyn = DynamicESDIndex(fig1)
        self._corrupt_one_edge(dyn)
        sampler = InvariantSampler(dyn, every=1, sample_size=dyn.graph.m)
        for _ in range(40):
            sampler.check_now()
        assert len(sampler.violations) <= 32


class TestStatus:
    def test_status_shape(self, fig1):
        dyn = DynamicESDIndex(fig1)
        sampler = InvariantSampler(dyn, every=5, sample_size=4)
        status = sampler.status()
        assert status == {
            "enabled": True,
            "every": 5,
            "sample_size": 4,
            "strict": False,
            "checks": 0,
            "edges_checked": 0,
            "violations": 0,
            "recent_violations": [],
            "last_check_version": None,
        }
