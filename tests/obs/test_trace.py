"""Tracer and sink unit tests: spans, nesting, sinks, failure modes."""

import json
import threading

import pytest

from repro.obs.sinks import CollectingSink, JsonlSink, NullSink, span_tree
from repro.obs.trace import TRACER, NullSpan, Tracer


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        a = tracer.span("x", k=1)
        b = tracer.span("y")
        assert isinstance(a, NullSpan)
        assert a is b  # one shared instance, no allocation per call

    def test_null_span_supports_full_surface(self):
        tracer = Tracer()
        with tracer.span("x", k=1) as span:
            span.set(results=3)
            assert span.enabled is False

    def test_nothing_emitted_while_disabled(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        tracer.disable()
        with tracer.span("x"):
            pass
        assert sink.records == []
        assert tracer.sink is None

    def test_enable_requires_sink(self):
        with pytest.raises(ValueError):
            Tracer().configure(None)


class TestEnabledTracer:
    def test_span_records_name_duration_attrs(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        with tracer.span("index.topk", k=5, tau=2) as span:
            span.set(results=5)
        (record,) = sink.records
        assert record["name"] == "index.topk"
        assert record["attrs"] == {"k": 5, "tau": 2, "results": 5}
        assert record["duration_ms"] >= 0
        assert record["parent_id"] is None
        assert record["trace_id"] == record["span_id"]

    def test_nesting_assigns_parent_and_trace_ids(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {r["name"]: r for r in sink.records}
        assert by_name["middle"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["parent_id"] == by_name["middle"]["span_id"]
        assert {r["trace_id"] for r in sink.records} == {outer.span_id}
        # Children close (and emit) before their parent.
        assert [r["name"] for r in sink.records] == ["inner", "middle", "outer"]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = sink.records
        assert first["trace_id"] != second["trace_id"]

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("op"):
                raise RuntimeError("boom")
        (record,) = sink.records
        assert record["error"] == "RuntimeError: boom"
        # The stack unwound cleanly: the next span is a root again.
        with tracer.span("after"):
            pass
        assert sink.records[-1]["parent_id"] is None

    def test_broken_sink_never_breaks_the_operation(self):
        tracer = Tracer()

        def explode(record):
            raise OSError("disk full")

        tracer.configure(explode)
        with tracer.span("op"):
            pass  # must not raise
        assert tracer.emit_errors == 1
        assert tracer.spans_emitted == 0

    def test_callable_sink_supported(self):
        tracer = Tracer()
        seen = []
        tracer.configure(seen.append)
        with tracer.span("op"):
            pass
        assert [r["name"] for r in seen] == ["op"]

    def test_threads_keep_separate_stacks(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.configure(sink)
        ready = threading.Barrier(2, timeout=5)

        def worker(name):
            ready.wait()
            with tracer.span(name):
                pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Neither thread's span adopted the other as parent.
        assert all(r["parent_id"] is None for r in sink.records)

    def test_status_counts_emissions(self):
        tracer = Tracer()
        tracer.configure(CollectingSink())
        with tracer.span("a"):
            pass
        status = tracer.status()
        assert status["enabled"] is True
        assert status["sink"] == "CollectingSink"
        assert status["spans_emitted"] == 1
        assert status["emit_errors"] == 0

    def test_global_tracer_exists_and_starts_disabled(self):
        assert TRACER.enabled is False


class TestSinks:
    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer()
        with JsonlSink(path) as sink:
            tracer.configure(sink)
            with tracer.span("a", k=1):
                with tracer.span("b"):
                    pass
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert sink.emitted == 2

    def test_jsonl_sink_wraps_open_stream_without_closing(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            sink = JsonlSink(stream)
            sink.emit({"name": "x"})
            sink.close()  # does not own the stream
            assert not stream.closed

    def test_collecting_sink_capacity(self):
        sink = CollectingSink(capacity=2)
        for i in range(5):
            sink.emit({"name": str(i)})
        assert len(sink) == 2
        assert sink.dropped == 3
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_null_sink_counts(self):
        sink = NullSink()
        sink.emit({"name": "x"})
        assert sink.emitted == 1

    def test_span_tree_indexes_by_parent(self):
        records = [
            {"name": "root", "span_id": "1", "parent_id": None},
            {"name": "child-a", "span_id": "2", "parent_id": "1"},
            {"name": "child-b", "span_id": "3", "parent_id": "1"},
            {"name": "grandchild", "span_id": "4", "parent_id": "2"},
        ]
        tree = span_tree(records)
        assert [r["name"] for r in tree[None]] == ["root"]
        assert [r["name"] for r in tree["1"]] == ["child-a", "child-b"]
        assert [r["name"] for r in tree["2"]] == ["grandchild"]
