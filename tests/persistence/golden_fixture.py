"""The golden fixture: one tiny, fully deterministic snapshot + WAL.

``make_golden_bytes()`` builds the byte-exact artifacts the files under
``tests/persistence/golden/`` were committed from.  The golden test
regenerates them and compares byte-for-byte: any change to the framing,
the canonical JSON encoding, the section layout, or the CRC algorithm
shows up as a diff and must be shipped with a format-version bump and
regenerated fixtures (run this module: ``python -m
tests.persistence.golden_fixture``).
"""

from __future__ import annotations

import os

from repro.core.maintenance import DynamicESDIndex
from repro.graph.graph import Graph
from repro.persistence.snapshot import encode_snapshot
from repro.persistence.wal import WALRecord

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
SNAPSHOT_FILE = os.path.join(GOLDEN_DIR, "snapshot.esd")
WAL_FILE = os.path.join(GOLDEN_DIR, "wal.log")

#: The fixture graph: a 4-clique on {0,1,2,3} plus pendant edge (3, 4).
#: Small enough to eyeball, rich enough to exercise nonempty components.
GOLDEN_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]

#: The WAL tail: two mutations on top of the snapshot.
GOLDEN_RECORDS = [
    WALRecord(op="insert", u=2, v=4, version=1),
    WALRecord(op="delete", u=0, v=3, version=2),
]


def make_golden_bytes():
    """Return ``(snapshot_bytes, wal_bytes)`` for the fixture state."""
    from repro.persistence import wal as wal_format

    dyn = DynamicESDIndex(Graph(GOLDEN_EDGES))
    snapshot_bytes = encode_snapshot(dyn.export_state())
    wal_bytes = wal_format._HEADER.pack(
        wal_format.MAGIC, wal_format.FORMAT_VERSION
    ) + b"".join(record.encode() for record in GOLDEN_RECORDS)
    return snapshot_bytes, wal_bytes


def regenerate() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    snapshot_bytes, wal_bytes = make_golden_bytes()
    with open(SNAPSHOT_FILE, "wb") as handle:
        handle.write(snapshot_bytes)
    with open(WAL_FILE, "wb") as handle:
        handle.write(wal_bytes)
    print(
        f"wrote {SNAPSHOT_FILE} ({len(snapshot_bytes)} bytes) and "
        f"{WAL_FILE} ({len(wal_bytes)} bytes)"
    )


if __name__ == "__main__":
    regenerate()
