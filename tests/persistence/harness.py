"""Property-based differential test harness (stdlib only, no hypothesis).

The property under test is the one the whole system rests on: however a
graph state was *reached* -- incremental maintenance, WAL replay after a
crash, or a cold rebuild -- queries over it must agree.  Concretely, for
a random base graph and a random insert/delete stream applied through a
persistent :class:`QueryEngine`:

    crash-recovered index  ≡  fresh ``build_index_fast`` rebuild
                           ≡  ``topk_online`` on the final graph

for several ``(k, τ)`` pairs (plus the paper-level invariant checker).

Everything is derived from one integer seed, so a failure message names
the exact reproduction.  On failure the harness runs a *shrinking loop*
(delta debugging over the operation stream at halving granularity,
then per-op removal) and reports the smallest stream that still fails.
Subsequences stay well-formed because inapplicable ops (duplicate
insert, absent delete) are skipped by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.build import build_index_fast
from repro.core.online import topk_online
from repro.graph.generators import gnm_random
from repro.graph.graph import canonical_edge
from repro.persistence.store import DataDirectory
from repro.service.engine import QueryEngine

Op = Tuple[str, int, int]  # ("insert"|"delete", u, v)

#: ``(k, τ)`` pairs every trial is checked against.
QUERY_PAIRS = ((1, 1), (5, 1), (10, 2), (4, 3), (50, 2))


@dataclass
class Case:
    """One reproducible trial: a base graph plus an operation stream."""

    seed: int
    n: int
    m: int
    ops: List[Op]

    def describe(self) -> str:
        return (
            f"seed={self.seed} base=gnm_random({self.n}, {self.m}, "
            f"seed={self.seed}) ops={self.ops!r}"
        )


def generate_case(seed: int, *, max_n: int = 26, max_ops: int = 36) -> Case:
    """Derive a random case deterministically from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(6, max_n)
    max_m = n * (n - 1) // 2
    m = rng.randint(0, min(max_m, 4 * n))
    graph = gnm_random(n, m, seed=seed)
    edges = set(graph.edges())
    ops: List[Op] = []
    for _ in range(rng.randint(1, max_ops)):
        if edges and rng.random() < 0.45:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            ops.append(("delete", edge[0], edge[1]))
        else:
            for _attempt in range(50):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and canonical_edge(u, v) not in edges:
                    edge = canonical_edge(u, v)
                    edges.add(edge)
                    ops.append(("insert", edge[0], edge[1]))
                    break
    return Case(seed=seed, n=n, m=m, ops=ops)


def apply_ops(engine: QueryEngine, ops: List[Op]) -> int:
    """Apply a stream, skipping inapplicable ops; return the applied count.

    Skipping (rather than failing) is what makes every *subsequence* of
    a stream a valid stream -- the property shrinking relies on.
    """
    applied = 0
    for action, u, v in ops:
        try:
            engine.update(action, u, v)
            applied += 1
        except (ValueError, KeyError):
            continue
    return applied


def check_case(case: Case, tmp_dir, *, snapshot_interval: int = 4) -> Optional[str]:
    """Run one trial; return ``None`` on success or a failure description.

    The engine persists to ``tmp_dir`` (a small ``snapshot_interval``
    forces compactions mid-stream) and is then abandoned *without* a
    clean shutdown, so recovery exercises genuine WAL replay.
    """
    base = gnm_random(case.n, case.m, seed=case.seed)
    store = DataDirectory(tmp_dir, fsync=False)
    dyn, _report = store.open(bootstrap_graph=base)
    engine = QueryEngine(
        dynamic_index=dyn,
        store=store,
        snapshot_interval=snapshot_interval,
        batch_window=0.0,
    )
    apply_ops(engine, case.ops)
    live_answers = {
        (k, tau): dyn.topk(k, tau) for k, tau in QUERY_PAIRS
    }
    store.wal.close()  # release the handle; skip engine.close() on purpose

    # 1. Crash-style recovery from disk.
    recovered_store = DataDirectory(tmp_dir, fsync=False)
    recovered, _ = recovered_store.open()
    recovered_store.close()
    try:
        recovered.check_invariants()
    except AssertionError as exc:
        return f"recovered index failed invariants: {exc}"
    if recovered.graph_version != dyn.graph_version:
        return (
            f"recovered version {recovered.graph_version} != "
            f"live version {dyn.graph_version}"
        )

    # 2. Cold rebuild of the final graph.
    fresh = build_index_fast(dyn.graph)

    for k, tau in QUERY_PAIRS:
        live = live_answers[(k, tau)]
        from_disk = recovered.topk(k, tau)
        rebuilt = fresh.topk(k, tau)
        # topk_online pads with score-0 edges to reach k; the index, by
        # construction, only ranks positive scores.  Both break ties by
        # ascending edge id, so equality is exact after filtering.
        online = [
            (edge, score)
            for edge, score in topk_online(dyn.graph, k, tau)
            if score > 0
        ]
        if from_disk != rebuilt:
            return (
                f"recovered != rebuilt at (k={k}, tau={tau}): "
                f"{from_disk} != {rebuilt}"
            )
        if live != rebuilt:
            return (
                f"maintained != rebuilt at (k={k}, tau={tau}): "
                f"{live} != {rebuilt}"
            )
        if online != rebuilt:
            return (
                f"online != rebuilt at (k={k}, tau={tau}): "
                f"{online} != {rebuilt}"
            )
    return None


def shrink_case(case: Case, make_dir, *, max_attempts: int = 200, check=None) -> Case:
    """Delta-debug the op stream down to a minimal still-failing case.

    ``make_dir()`` must return a fresh empty directory per attempt.
    Tries removing chunks at halving granularity, then single ops; stops
    when no single removal reproduces the failure (1-minimal) or after
    ``max_attempts`` runs.  ``check`` is the failure oracle --
    ``check(case, dir) -> Optional[str]``, defaulting to
    :func:`check_case` (resolved at call time) -- so other differential
    harnesses (e.g. the cluster replication test) reuse this shrinking
    loop against their own end-to-end property.
    """
    if check is None:
        check = check_case
    attempts = 0

    def still_fails(ops: List[Op]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        candidate = Case(seed=case.seed, n=case.n, m=case.m, ops=ops)
        return check(candidate, make_dir()) is not None

    ops = list(case.ops)
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        i = 0
        while i < len(ops):
            candidate = ops[:i] + ops[i + chunk :]
            if candidate != ops and still_fails(candidate):
                ops = candidate  # keep the removal, retry same position
            else:
                i += chunk
        chunk //= 2
    return Case(seed=case.seed, n=case.n, m=case.m, ops=ops)
