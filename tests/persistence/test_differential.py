"""Property-based randomized differential tests (see ``harness.py``).

Each trial: random graph + random insert/delete stream through a
persistent engine, then assert

    crash-recovered ≡ fresh rebuild ≡ online top-k search

across several ``(k, τ)`` pairs.  Failures shrink to a minimal stream
and report the generating seed, so any red run is a one-line repro.
"""

import itertools

import pytest

from tests.persistence.harness import (
    Case,
    check_case,
    generate_case,
    shrink_case,
)

#: Bump to re-roll the whole battery; keep fixed for reproducibility.
BASE_SEED = 0xE5D_2026
TRIALS = 18


def _fresh_dir_factory(tmp_path):
    counter = itertools.count()

    def make() -> str:
        path = tmp_path / f"shrink-{next(counter)}"
        path.mkdir()
        return str(path)

    return make


@pytest.mark.parametrize("trial", range(TRIALS))
def test_replay_rebuild_online_agree(trial, tmp_path):
    case = generate_case(BASE_SEED + trial)
    failure = check_case(case, str(tmp_path / "trial"))
    if failure is None:
        return
    # Shrink before reporting: the minimal stream is the useful artifact.
    minimal = shrink_case(case, _fresh_dir_factory(tmp_path))
    final_failure = check_case(minimal, _fresh_dir_factory(tmp_path)())
    pytest.fail(
        "differential property violated\n"
        f"  original: {case.describe()}\n"
        f"  failure:  {failure}\n"
        f"  shrunk:   {minimal.describe()}\n"
        f"  shrunk failure: {final_failure}"
    )


def test_known_regression_empty_stream(tmp_path):
    """Zero ops: recovery must equal the bootstrap rebuild exactly."""
    case = Case(seed=5, n=12, m=30, ops=[])
    assert check_case(case, str(tmp_path / "d")) is None


def test_dense_churn_with_tiny_snapshot_interval(tmp_path):
    """Compaction after every mutation must not perturb the property."""
    case = generate_case(BASE_SEED - 1)
    assert (
        check_case(case, str(tmp_path / "d"), snapshot_interval=1) is None
    )


def test_harness_detects_divergence(tmp_path, monkeypatch):
    """Meta-test: the oracle actually fires when an index lies.

    A differential harness that can never fail proves nothing, so
    sabotage the recovered index's answers and demand a report.
    """
    from repro.core import maintenance

    real = maintenance.DynamicESDIndex.from_state.__func__

    def lying_from_state(cls, state):
        dyn = real(cls, state)
        if state["edges"]:
            u, v = state["edges"][0]
            # Corrupt one histogram: claim an extra giant component.
            dyn.index.set_edge((u, v), [99])
        return dyn

    monkeypatch.setattr(
        maintenance.DynamicESDIndex,
        "from_state",
        classmethod(lying_from_state),
    )
    case = Case(
        seed=11, n=10, m=20, ops=[("insert", 0, 9), ("delete", 0, 9)]
    )
    failure = check_case(case, str(tmp_path / "d"))
    assert failure is not None and "recovered" in failure


def test_shrinking_produces_smaller_failing_case(tmp_path, monkeypatch):
    """Meta-test: shrinking strictly reduces a failing stream."""
    from tests.persistence import harness

    # Fail whenever the stream still contains a delete of edge (1, 2).
    real_check = harness.check_case

    def fake_check(case, tmp_dir, **kwargs):
        if ("delete", 1, 2) in case.ops:
            return "synthetic failure"
        return None

    monkeypatch.setattr(harness, "check_case", fake_check)
    case = Case(
        seed=1,
        n=8,
        m=10,
        ops=[("insert", 0, 1), ("delete", 1, 2), ("insert", 2, 3),
             ("delete", 3, 4), ("insert", 4, 5)],
    )
    minimal = harness.shrink_case(case, _fresh_dir_factory(tmp_path))
    assert minimal.ops == [("delete", 1, 2)]
    monkeypatch.setattr(harness, "check_case", real_check)
