"""Structured-error and edge-branch coverage for the persistence layer.

The happy paths and the headline fault modes live in
``test_store_recovery.py``; this module pins down the remaining error
branches -- every one must raise (or report) the *structured* error it
documents, because recovery code that fails with the wrong exception is
recovery code that a caller will mishandle.
"""

import json
import os
import struct
import zlib

import pytest

from repro.core.maintenance import DynamicESDIndex
from repro.graph.generators import gnm_random
from repro.graph.graph import Graph
from repro.persistence import (
    CorruptSnapshotError,
    CorruptWALError,
    DataDirectory,
    RecoveryError,
    WALRecord,
    WriteAheadLog,
    fsck_data_dir,
)
from repro.persistence import format as container
from repro.persistence import wal as wal_format
from repro.persistence.faults import (
    corrupt_snapshot_section,
    corrupt_wal_record,
    flip_byte,
    tear_wal_tail,
    FaultInjector,
)
from repro.persistence.snapshot import write_snapshot
from repro.persistence.store import RecoveryReport, replay_records
from repro.persistence.wal import scan_wal, truncate_torn_tail


class TestContainerErrors:
    def test_bad_tag_length_rejected(self):
        with pytest.raises(ValueError):
            container.encode_container("k", [(b"TOOLONG", b"x")])

    def test_manual_meta_rejected(self):
        with pytest.raises(ValueError):
            container.encode_container("k", [(container.META_TAG, b"{}")])

    def test_duplicate_section_rejected(self):
        good = container.encode_container("k", [(b"DATA", b"x")])
        # Append a second copy of the DATA section verbatim; also fix
        # META? No -- duplicate detection must fire before the declared
        # section list is consulted, so the raw append is enough.
        offset = container._HEADER.size
        tag, length, _ = container._SECTION.unpack_from(good, offset)
        assert tag == container.META_TAG
        offset += container._SECTION.size + length
        dup = good + good[offset:]
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(dup, expect_kind="k")
        assert "duplicate" in info.value.message

    def test_missing_meta_rejected(self):
        payload = b"x"
        section = (
            container._SECTION.pack(
                b"DATA", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
            )
            + payload
        )
        raw = (
            container._HEADER.pack(
                container.MAGIC, container.FORMAT_VERSION
            )
            + section
        )
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(raw, expect_kind="k")
        assert "META" in info.value.message

    def test_meta_not_json_rejected(self):
        payload = b"not json {"
        section = (
            container._SECTION.pack(
                container.META_TAG,
                len(payload),
                zlib.crc32(payload) & 0xFFFFFFFF,
            )
            + payload
        )
        raw = (
            container._HEADER.pack(
                container.MAGIC, container.FORMAT_VERSION
            )
            + section
        )
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(raw, expect_kind="k")
        assert "not valid JSON" in info.value.message

    def test_json_section_missing_and_malformed(self):
        with pytest.raises(CorruptSnapshotError) as info:
            container.json_section({}, b"GONE")
        assert "missing required section" in info.value.message
        with pytest.raises(CorruptSnapshotError) as info:
            container.json_section({b"BADJ": b"{half"}, b"BADJ")
        assert "not valid JSON" in info.value.message


class TestWALErrors:
    def _write(self, path, body):
        with open(path, "wb") as handle:
            handle.write(body)

    def test_torn_at_file_birth(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, b"ESDW")  # shorter than the 12-byte header
        report = scan_wal(path)
        assert report.torn and report.torn_tail_bytes == 4
        assert report.records == []

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, wal_format._HEADER.pack(wal_format.MAGIC, 99))
        with pytest.raises(CorruptWALError) as info:
            scan_wal(path)
        assert "version" in info.value.message

    def test_implausible_length_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        body = wal_format._HEADER.pack(
            wal_format.MAGIC, wal_format.FORMAT_VERSION
        ) + wal_format._RECORD.pack(wal_format.MAX_RECORD_BYTES + 1, 0)
        self._write(path, body)
        with pytest.raises(CorruptWALError) as info:
            scan_wal(path)
        assert "implausible" in info.value.message

    def _framed(self, payload):
        return (
            wal_format._RECORD.pack(
                len(payload), zlib.crc32(payload) & 0xFFFFFFFF
            )
            + payload
        )

    def test_non_json_payload_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(
            path,
            wal_format._HEADER.pack(
                wal_format.MAGIC, wal_format.FORMAT_VERSION
            )
            + self._framed(b"garbage but CRC-valid"),
        )
        with pytest.raises(CorruptWALError) as info:
            scan_wal(path)
        assert "not valid JSON" in info.value.message

    def test_invalid_shape_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        payload = json.dumps({"op": "explode", "u": 1}).encode()
        self._write(
            path,
            wal_format._HEADER.pack(
                wal_format.MAGIC, wal_format.FORMAT_VERSION
            )
            + self._framed(payload),
        )
        with pytest.raises(CorruptWALError) as info:
            scan_wal(path)
        assert "invalid shape" in info.value.message

    def test_truncate_noop_when_not_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append("insert", 1, 2, 1)
        report = scan_wal(path)
        assert not report.torn
        assert truncate_torn_tail(path, report) == 0
        assert len(scan_wal(path).records) == 1

    def test_append_rejects_unknown_op(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            with pytest.raises(ValueError):
                wal.append("upsert", 1, 2, 1)

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=False)
        wal.close()
        wal.close()

    def test_fsync_append_and_reset(self, tmp_path):
        """Exercise the fsync=True branches (the tests above use
        fsync=False for speed)."""
        with WriteAheadLog(tmp_path / "wal.log", fsync=True) as wal:
            wal.append("insert", 1, 2, 1)
            wal.reset()
            assert wal.size_bytes() == wal_format._HEADER.size


class TestFaultToolErrors:
    def test_injector_disarm_and_visited(self):
        faults = FaultInjector().crash_at("p")
        assert faults.armed("p")
        faults.disarm("p")
        assert not faults.armed("p")
        faults.check("p")  # disarmed: records the visit, does not raise
        assert faults.visited == ["p"]

    def test_tear_empty_wal_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        WriteAheadLog(path, fsync=False).close()
        with pytest.raises(ValueError):
            tear_wal_tail(path)

    def test_flip_byte_bounds(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"abc")
        flip_byte(path, -1)
        assert path.read_bytes()[:2] == b"ab"
        with pytest.raises(ValueError):
            flip_byte(path, 3)

    def test_corrupt_wal_record_bounds(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append("insert", 1, 2, 1)
        with pytest.raises(ValueError):
            corrupt_wal_record(path, index=5)
        empty = tmp_path / "empty.log"
        WriteAheadLog(empty, fsync=False).close()
        with pytest.raises(ValueError):
            corrupt_wal_record(empty)

    def test_corrupt_snapshot_missing_section(self, tmp_path):
        path = tmp_path / "snap.esd"
        state = DynamicESDIndex(Graph([(0, 1)])).export_state()
        write_snapshot(path, state, fsync=False)
        with pytest.raises(ValueError):
            corrupt_snapshot_section(path, b"NOPE")


class TestSnapshotValidationErrors:
    def test_edge_count_mismatch(self, tmp_path):
        # STAT's counts are derived at encode time, so the only way this
        # branch fires is a file whose STAT bytes were altered with a
        # recomputed CRC -- patch "m" in place exactly like that.
        state = DynamicESDIndex(Graph([(0, 1), (1, 2)])).export_state()
        path = tmp_path / "bad.esd"
        write_snapshot(path, state, fsync=False)
        raw = path.read_bytes()
        offset = container._HEADER.size
        while True:
            tag, length, _crc = container._SECTION.unpack_from(raw, offset)
            if tag == b"STAT":
                break
            offset += container._SECTION.size + length
        start = offset + container._SECTION.size
        patched = raw[start : start + length].replace(b'"m":2', b'"m":3')
        assert patched != raw[start : start + length]
        path.write_bytes(
            raw[: offset + 4]
            + struct.pack(
                ">QI", len(patched), zlib.crc32(patched) & 0xFFFFFFFF
            )
            + patched
            + raw[start + length :]
        )
        from repro.persistence.snapshot import read_snapshot

        with pytest.raises(CorruptSnapshotError) as info:
            read_snapshot(path)
        assert "edge count" in info.value.message

    def test_malformed_edge_entry(self, tmp_path):
        state = DynamicESDIndex(Graph([(0, 1)])).export_state()
        state["edges"][0] = [0, 1, 2]
        path = tmp_path / "bad.esd"
        write_snapshot(path, state, fsync=False)
        from repro.persistence.snapshot import read_snapshot

        with pytest.raises(CorruptSnapshotError) as info:
            read_snapshot(path)
        assert "malformed edge" in info.value.message

    def test_fsync_write_path(self, tmp_path):
        from repro.persistence.snapshot import read_snapshot

        state = DynamicESDIndex(Graph([(0, 1)])).export_state()
        write_snapshot(tmp_path / "s.esd", state, fsync=True)
        assert read_snapshot(tmp_path / "s.esd")["edges"] == [(0, 1)]


class TestStoreErrors:
    def test_recovery_report_to_dict(self):
        report = RecoveryReport(bootstrapped=True, final_version=3)
        as_dict = report.to_dict()
        assert as_dict["bootstrapped"] is True
        assert as_dict["final_version"] == 3
        assert sorted(as_dict) == sorted(
            [
                "bootstrapped", "snapshot_version", "records_replayed",
                "records_skipped", "torn_tail_truncated_bytes",
                "final_version", "notes",
            ]
        )

    def test_replay_version_regression_mid_log(self):
        dyn = DynamicESDIndex(Graph([(0, 1)]))
        records = [
            WALRecord("insert", 5, 6, 1),
            WALRecord("insert", 7, 8, 1),  # backwards after a replay
        ]
        with pytest.raises(RecoveryError) as info:
            replay_records(dyn, records)
        assert "backwards" in info.value.message

    def test_replay_detects_version_divergence(self, monkeypatch):
        """If the index's version counter ever disagrees with the WAL
        after an apply, replay must halt rather than continue drifting."""
        dyn = DynamicESDIndex(Graph([(0, 1)]))
        real = DynamicESDIndex.insert_edge

        def double_bump(self, u, v):
            stats = real(self, u, v)
            self._version += 1
            return stats

        monkeypatch.setattr(DynamicESDIndex, "insert_edge", double_bump)
        with pytest.raises(RecoveryError) as info:
            replay_records(dyn, [WALRecord("insert", 5, 6, 1)])
        assert "diverged" in info.value.message

    def test_append_wal_requires_open(self, tmp_path):
        store = DataDirectory(str(tmp_path / "d"), fsync=False)
        with pytest.raises(RuntimeError):
            store.append_wal("insert", 1, 2, 1)

    def test_stats_and_context_manager(self, tmp_path):
        with DataDirectory(str(tmp_path / "d"), fsync=False) as store:
            dyn, _ = store.open(bootstrap_graph=Graph([(0, 1)]))
            store.append_wal("insert", 0, 2, 1)
            stats = store.stats()
            assert stats["wal_appends"] == 1
            assert stats["snapshots_written"] == 1  # the bootstrap one
            assert stats["fsync"] is False
        assert store.wal is None  # __exit__ closed it

    def test_fsync_true_end_to_end(self, tmp_path):
        """One full bootstrap → mutate → compact → recover cycle with
        real fsync calls (other tests disable them for speed)."""
        store = DataDirectory(str(tmp_path / "d"), fsync=True)
        dyn, _ = store.open(bootstrap_graph=gnm_random(8, 12, seed=1))
        store.append_wal("insert", 100, 101, 1)
        dyn.insert_edge(100, 101)
        store.compact(dyn)
        store.close()
        dyn2, report = DataDirectory(str(tmp_path / "d"), fsync=True).open()
        assert not report.bootstrapped
        assert dyn2.graph_version == 1
        assert dyn2.graph.has_edge(100, 101)


class TestFsckReportPaths:
    def _data_dir(self, tmp_path, graph=None):
        store = DataDirectory(str(tmp_path / "d"), fsync=False)
        dyn, _ = store.open(
            bootstrap_graph=graph or gnm_random(10, 20, seed=2)
        )
        return store, dyn, str(tmp_path / "d")

    def test_missing_snapshot_is_error(self, tmp_path):
        os.makedirs(tmp_path / "d")
        WriteAheadLog(tmp_path / "d" / "wal.log", fsync=False).close()
        report = fsck_data_dir(str(tmp_path / "d"))
        assert not report.ok
        assert any(i.code == "missing_snapshot" for i in report.errors)

    def test_missing_wal_is_warning_only(self, tmp_path):
        store, dyn, path = self._data_dir(tmp_path)
        store.close()
        os.remove(os.path.join(path, "wal.log"))
        report = fsck_data_dir(path)
        assert report.ok
        assert any(i.code == "missing_wal" for i in report.warnings)

    def test_wal_version_regression_reported(self, tmp_path):
        store, dyn, path = self._data_dir(tmp_path)
        store.append_wal("insert", 50, 51, 1)
        store.append_wal("insert", 52, 53, 0)  # regression after replayable
        store.close()
        report = fsck_data_dir(path)
        assert not report.ok
        assert any(
            i.code == "wal_version_regression" for i in report.errors
        )

    def test_deep_replay_failure_reported(self, tmp_path):
        store, dyn, path = self._data_dir(tmp_path)
        # Contiguous version, inapplicable op: passes the structural
        # phase, fails the deep replay.
        store.append_wal("delete", 900, 901, 1)
        store.close()
        report = fsck_data_dir(path, deep=True)
        assert not report.ok
        assert any(i.code == "replay_failed" for i in report.errors)

    def test_deep_invariant_violation_reported(self, tmp_path):
        """A snapshot whose stored partitions disagree with its own graph
        must be caught by the deep check, not served."""
        # K4: edge (0,1) sees the adjacent pair {2,3} as one component.
        dyn = DynamicESDIndex(
            Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        )
        state = dyn.export_state()
        for i, comps in enumerate(state["components"]):
            if any(len(group) >= 2 for group in comps):
                state["components"][i] = [
                    [w] for group in comps for w in group
                ]
                break
        else:
            pytest.fail("fixture graph has no multi-member component")
        os.makedirs(tmp_path / "d")
        write_snapshot(tmp_path / "d" / "snapshot.esd", state, fsync=False)
        WriteAheadLog(tmp_path / "d" / "wal.log", fsync=False).close()
        report = fsck_data_dir(str(tmp_path / "d"), deep=True)
        assert not report.ok
        assert any(
            i.code == "invariant_violation" for i in report.errors
        )

    def test_deep_topk_mismatch_is_last_line_of_defense(
        self, tmp_path, monkeypatch
    ):
        """With invariant checking disabled, a wrong-partition snapshot
        must still fail the top-k comparison against a fresh rebuild."""
        monkeypatch.setattr(
            DynamicESDIndex, "check_invariants", lambda self: None
        )
        dyn = DynamicESDIndex(
            Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        )
        state = dyn.export_state()
        for i, comps in enumerate(state["components"]):
            if any(len(group) >= 2 for group in comps):
                state["components"][i] = [
                    [w] for group in comps for w in group
                ]
                break
        os.makedirs(tmp_path / "d")
        write_snapshot(tmp_path / "d" / "snapshot.esd", state, fsync=False)
        WriteAheadLog(tmp_path / "d" / "wal.log", fsync=False).close()
        report = fsck_data_dir(str(tmp_path / "d"), deep=True)
        assert not report.ok
        assert any(i.code == "topk_mismatch" for i in report.errors)
