"""Unit tests for the container framing and the WAL record framing."""

import pytest

from repro.persistence import format as container
from repro.persistence.errors import CorruptSnapshotError, CorruptWALError
from repro.persistence.faults import corrupt_wal_record, flip_byte, tear_wal_tail
from repro.persistence.wal import WriteAheadLog, scan_wal, truncate_torn_tail


class TestContainer:
    def test_round_trip(self):
        data = container.encode_container(
            "test-kind", [(b"AAAA", b"hello"), (b"BBBB", b"")]
        )
        sections = container.decode_container(data, expect_kind="test-kind")
        assert sections[b"AAAA"] == b"hello"
        assert sections[b"BBBB"] == b""
        assert b"META" in sections

    def test_deterministic_bytes(self):
        one = container.encode_container("k", [(b"DATA", b"x" * 100)])
        two = container.encode_container("k", [(b"DATA", b"x" * 100)])
        assert one == two

    def test_bad_magic_rejected(self):
        data = b"NOTMAGIC" + container.encode_container("k", [])[8:]
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(data, expect_kind="k")
        assert "magic" in str(info.value)

    def test_unsupported_version_rejected(self):
        data = bytearray(container.encode_container("k", []))
        data[11] = 99  # last byte of the big-endian u32 version
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(bytes(data), expect_kind="k")
        assert info.value.details["actual"] == 99

    def test_flipped_payload_byte_fails_crc(self):
        data = bytearray(
            container.encode_container("k", [(b"DATA", b"payload")])
        )
        data[-3] ^= 0xFF
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(bytes(data), expect_kind="k")
        assert "checksum" in str(info.value)
        assert info.value.details["section"] == "DATA"

    def test_truncation_rejected(self):
        data = container.encode_container("k", [(b"DATA", b"payload")])
        for cut in (5, len(data) - 3, len(data) - len(b"payload") - 1):
            with pytest.raises(CorruptSnapshotError):
                container.decode_container(data[:cut], expect_kind="k")

    def test_kind_mismatch_rejected(self):
        data = container.encode_container("index", [])
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(data, expect_kind="snapshot")
        assert info.value.details == {"expected": "snapshot", "actual": "index"}

    def test_missing_declared_section_rejected(self):
        # Chop the final section off entirely: framing parses (the cut is
        # on a boundary), but META's declared section list catches it.
        full = container.encode_container("k", [(b"DATA", b"x")])
        cut = len(full) - (container._SECTION.size + 1)  # drop DATA entirely
        with pytest.raises(CorruptSnapshotError) as info:
            container.decode_container(full[:cut], expect_kind="k")
        assert "declared" in str(info.value)

    def test_structured_error_payload(self):
        err = CorruptSnapshotError("boom", section="DATA", offset=12)
        assert err.to_dict() == {
            "error": "CorruptSnapshotError",
            "message": "boom",
            "details": {"section": "DATA", "offset": 12},
        }


class TestWALFraming:
    def _make(self, path, n=3):
        with WriteAheadLog(path, fsync=False) as wal:
            for i in range(n):
                wal.append("insert", i, i + 1, i + 1)

    def test_append_scan_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make(path)
        report = scan_wal(path)
        assert not report.torn
        assert [(r.op, r.u, r.v, r.version) for r in report.records] == [
            ("insert", 0, 1, 1),
            ("insert", 1, 2, 2),
            ("insert", 2, 3, 3),
        ]

    def test_missing_and_empty_files_scan_empty(self, tmp_path):
        assert scan_wal(tmp_path / "absent.log").records == []
        (tmp_path / "empty.log").write_bytes(b"")
        assert scan_wal(tmp_path / "empty.log").records == []

    def test_torn_tail_detected_and_truncatable(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make(path)
        removed = tear_wal_tail(path)
        assert removed > 0
        report = scan_wal(path)
        assert report.torn
        assert len(report.records) == 2  # final record lost, earlier kept
        truncate_torn_tail(path, report)
        clean = scan_wal(path)
        assert not clean.torn and len(clean.records) == 2
        # The log must accept appends again after truncation.
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append("delete", 9, 10, 3)
        assert len(scan_wal(path).records) == 3

    def test_corrupt_mid_record_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make(path)
        corrupt_wal_record(path, index=1)
        with pytest.raises(CorruptWALError) as info:
            scan_wal(path)
        assert "checksum" in str(info.value)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make(path)
        flip_byte(path, 0)
        with pytest.raises(CorruptWALError) as info:
            scan_wal(path)
        assert "magic" in str(info.value)

    def test_implausible_length_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make(path, n=1)
        # Blow up the length prefix of the first record (offset 12).
        flip_byte(path, 12)
        with pytest.raises(CorruptWALError):
            scan_wal(path)

    def test_reset_leaves_fresh_header(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append("insert", 1, 2, 1)
            wal.reset()
            wal.append("insert", 3, 4, 2)
        report = scan_wal(path)
        assert [(r.u, r.v) for r in report.records] == [(3, 4)]

    def test_string_vertices_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append("insert", "alice", "bob", 1)
        record = scan_wal(path).records[0]
        assert (record.u, record.v) == ("alice", "bob")

    def test_invalid_op_rejected_at_append(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.log", fsync=False) as wal:
            with pytest.raises(ValueError):
                wal.append("upsert", 1, 2, 1)
