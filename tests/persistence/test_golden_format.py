"""Golden-file tests: on-disk format stability, byte for byte.

The committed fixtures under ``golden/`` pin the exact bytes the current
format version produces for a tiny known state.  If any of these tests
fail, the format changed: that is only allowed together with an explicit
``FORMAT_VERSION`` bump (plus migration/compat handling) and regenerated
fixtures (``python -m tests.persistence.golden_fixture``).
"""

import struct
import zlib

from repro.core.maintenance import DynamicESDIndex
from repro.persistence import format as container
from repro.persistence import wal as wal_format
from repro.persistence.snapshot import read_snapshot
from repro.persistence.wal import scan_wal

from tests.persistence.golden_fixture import (
    GOLDEN_EDGES,
    GOLDEN_RECORDS,
    SNAPSHOT_FILE,
    WAL_FILE,
    make_golden_bytes,
)


def test_snapshot_bytes_are_stable():
    regenerated, _ = make_golden_bytes()
    with open(SNAPSHOT_FILE, "rb") as handle:
        committed = handle.read()
    assert regenerated == committed, (
        "snapshot encoding changed; bump FORMAT_VERSION and regenerate "
        "the golden fixtures deliberately"
    )


def test_wal_bytes_are_stable():
    _, regenerated = make_golden_bytes()
    with open(WAL_FILE, "rb") as handle:
        committed = handle.read()
    assert regenerated == committed, (
        "WAL encoding changed; bump the WAL FORMAT_VERSION and "
        "regenerate the golden fixtures deliberately"
    )


def test_header_constants_pinned():
    """The magic numbers themselves are API; freezing them here means a
    rename cannot slip through as an 'internal' refactor."""
    assert container.MAGIC == b"ESDBIN\r\n"
    assert container.FORMAT_VERSION == 1
    assert wal_format.MAGIC == b"ESDWALOG"
    assert wal_format.FORMAT_VERSION == 1
    with open(SNAPSHOT_FILE, "rb") as handle:
        assert handle.read(12) == b"ESDBIN\r\n" + struct.pack(">I", 1)
    with open(WAL_FILE, "rb") as handle:
        assert handle.read(12) == b"ESDWALOG" + struct.pack(">I", 1)


def test_golden_section_checksums_verify():
    """Walk the committed snapshot's framing by hand and verify every
    section CRC against an independent zlib.crc32 computation."""
    with open(SNAPSHOT_FILE, "rb") as handle:
        data = handle.read()
    offset = 12
    seen = []
    while offset < len(data):
        tag, length, crc = struct.unpack_from(">4sQI", data, offset)
        payload = data[offset + 16 : offset + 16 + length]
        assert len(payload) == length
        assert zlib.crc32(payload) & 0xFFFFFFFF == crc
        seen.append(tag)
        offset += 16 + length
    assert seen == [b"META", b"STAT", b"VERT", b"EDGE", b"COMP"]


def test_golden_snapshot_loads_and_answers():
    """The committed fixture must stay loadable, not just byte-stable."""
    state = read_snapshot(SNAPSHOT_FILE)
    assert state["graph_version"] == 0
    dyn = DynamicESDIndex.from_state(state)
    assert sorted(dyn.graph.edges()) == GOLDEN_EDGES
    dyn.check_invariants()
    # 4-clique edges each see one component of size 2 in their ego-net.
    assert dyn.index.score((0, 1), 1) == 1
    assert dyn.index.score((0, 1), 2) == 1


def test_golden_wal_replays_onto_snapshot():
    state = read_snapshot(SNAPSHOT_FILE)
    dyn = DynamicESDIndex.from_state(state)
    report = scan_wal(WAL_FILE)
    assert [
        (r.op, r.u, r.v, r.version) for r in report.records
    ] == [(r.op, r.u, r.v, r.version) for r in GOLDEN_RECORDS]
    from repro.persistence.store import replay_records

    replayed, skipped = replay_records(dyn, report.records)
    assert (replayed, skipped) == (2, 0)
    assert dyn.graph.has_edge(2, 4) and not dyn.graph.has_edge(0, 3)
    dyn.check_invariants()
