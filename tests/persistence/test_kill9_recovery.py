"""End-to-end crash test: ``kill -9`` a live server, restart, compare.

This is the acceptance criterion run for real: a subprocess ``esd serve
--data-dir`` is SIGKILLed (once after acknowledged mutations, once
mid-write under load), restarted on the same directory, and the
recovered top-k answers must match both the pre-kill answers and a
from-scratch rebuild for every tested ``(k, τ)``.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.build import build_index_fast
from repro.graph.generators import gnm_random
from repro.graph.io import write_edge_list
from repro.persistence import DataDirectory, fsck_data_dir
from repro.service.client import ServiceClient, wait_until_ready

QUERIES = ((5, 1), (10, 2), (3, 3))
SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn_server(graph_file, data_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--graph", str(graph_file), "--port", "0",
            "--data-dir", str(data_dir), "--snapshot-interval", "6",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    # The ephemeral port is announced on the "listening on" line.
    port = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        pytest.fail("server did not announce a listening port")
    wait_until_ready("127.0.0.1", port, timeout=30)
    return proc, port


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(gnm_random(30, 120, seed=77), path)
    return path


def test_kill9_after_acked_mutations_recovers_topk(graph_file, tmp_path):
    data_dir = tmp_path / "data"
    proc, port = _spawn_server(graph_file, data_dir)
    try:
        with ServiceClient("127.0.0.1", port) as client:
            for i in range(10):  # crosses a compaction + leaves a WAL tail
                client.insert_edge(500 + i, 501 + i)
            client.delete_edge(500, 501)
            before = {
                (k, tau): client.topk(k=k, tau=tau).items
                for k, tau in QUERIES
            }
            version = client.stats()["graph_version"]
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

    # Restart on the same data dir (no --graph: recovery only).
    proc2, port2 = _spawn_server(graph_file, data_dir)
    try:
        with ServiceClient("127.0.0.1", port2) as client:
            stats = client.stats()
            assert stats["graph_version"] == version == 11
            after = {
                (k, tau): client.topk(k=k, tau=tau).items
                for k, tau in QUERIES
            }
        assert after == before
    finally:
        os.kill(proc2.pid, signal.SIGKILL)
        proc2.wait(timeout=10)

    # Offline: the recovered state equals a cold rebuild.
    dyn, _ = DataDirectory(str(data_dir), fsync=False).open()
    fresh = build_index_fast(dyn.graph)
    for k, tau in QUERIES:
        assert dyn.topk(k, tau) == fresh.topk(k, tau)
        assert dyn.topk(k, tau) == before[(k, tau)]


def test_kill9_mid_write_storm_recovers_consistently(graph_file, tmp_path):
    """SIGKILL lands while mutations are in flight: whatever prefix was
    acknowledged must recover; the index must equal a fresh rebuild."""
    data_dir = tmp_path / "data"
    proc, port = _spawn_server(graph_file, data_dir)
    killed_mid_flight = False
    try:
        with ServiceClient("127.0.0.1", port) as client:
            # Fire mutations and kill the server partway through the storm.
            for i in range(200):
                if i == 37:
                    os.kill(proc.pid, signal.SIGKILL)
                    killed_mid_flight = True
                try:
                    client.insert_edge(600 + i, 601 + i)
                except (ConnectionError, OSError):
                    break
    finally:
        if not killed_mid_flight:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

    report = fsck_data_dir(str(data_dir), deep=True)
    assert report.ok, report.render()
    dyn, recovery = DataDirectory(str(data_dir), fsync=False).open()
    dyn.check_invariants()
    fresh = build_index_fast(dyn.graph)
    for k, tau in QUERIES:
        assert dyn.topk(k, tau) == fresh.topk(k, tau)
    # The recovered version covers everything up to the crash point.
    assert dyn.graph_version >= 30
