"""State export/restore round-trips, including through disk bytes."""

import pytest

from repro.core.build import build_index_fast
from repro.core.maintenance import DynamicESDIndex
from repro.graph.generators import collaboration_network, gnm_random
from repro.graph.graph import Graph
from repro.persistence.errors import CorruptSnapshotError
from repro.persistence.snapshot import read_snapshot, write_snapshot


def _round_trip(graph, tmp_path, mutate=None):
    dyn = DynamicESDIndex(graph)
    if mutate:
        mutate(dyn)
    path = tmp_path / "snap.esd"
    write_snapshot(path, dyn.export_state(), fsync=False)
    restored = DynamicESDIndex.from_state(read_snapshot(path))
    return dyn, restored


class TestRoundTrip:
    def test_identical_queries_and_invariants(self, fig1, tmp_path):
        dyn, restored = _round_trip(fig1, tmp_path)
        restored.check_invariants()
        for k, tau in ((1, 1), (10, 2), (40, 1), (5, 4)):
            assert restored.topk(k, tau) == dyn.topk(k, tau)

    def test_preserves_version_and_counters(self, fig1, tmp_path):
        def mutate(dyn):
            dyn.insert_edge("a", "zz")
            dyn.insert_edge("b", "zz")
            dyn.delete_edge("a", "zz")

        dyn, restored = _round_trip(fig1, tmp_path, mutate)
        assert restored.graph_version == 3
        assert restored.mutation_counters.insertions == 2
        assert restored.mutation_counters.deletions == 1

    def test_restored_index_keeps_mutating_correctly(self, tmp_path):
        """The restored M structures must support further maintenance."""
        dyn, restored = _round_trip(gnm_random(18, 60, seed=9), tmp_path)
        for dyn_ in (dyn, restored):
            dyn_.insert_edge(0, 17)
            dyn_.insert_edge(1, 17)
        restored.check_invariants()
        assert restored.topk(10, 2) == dyn.topk(10, 2)

    def test_isolated_vertices_survive(self, tmp_path):
        graph = Graph([(0, 1)])
        graph.add_vertex(99)
        dyn, restored = _round_trip(graph, tmp_path)
        assert 99 in restored.graph
        assert restored.graph.n == 3

    def test_string_vertices(self, tmp_path):
        dyn, restored = _round_trip(
            collaboration_network(communities=3, community_size=8, seed=3),
            tmp_path,
        )
        restored.check_invariants()
        assert restored.topk(5, 2) == dyn.topk(5, 2)

    def test_empty_graph(self, tmp_path):
        dyn, restored = _round_trip(Graph(), tmp_path)
        assert restored.graph.n == 0
        assert restored.topk(3, 1) == []

    def test_matches_cold_rebuild(self, tmp_path):
        _, restored = _round_trip(gnm_random(25, 110, seed=4), tmp_path)
        fresh = build_index_fast(restored.graph)
        for tau in (1, 2, 3):
            assert restored.topk(50, tau) == fresh.topk(50, tau)


class TestValidation:
    def _state(self):
        return DynamicESDIndex(Graph([(0, 1), (1, 2), (0, 2)])).export_state()

    def test_count_mismatch_rejected(self, tmp_path):
        # Patch STAT's "n" in place *and* fix its CRC, so only the
        # logical cross-check (not the checksum) can catch it.
        import struct
        import zlib

        path = tmp_path / "bad.esd"
        write_snapshot(path, self._state(), fsync=False)
        raw = path.read_bytes()
        offset = 12  # walk the framing; .index() would hit META's JSON
        while True:
            tag, length, _crc = struct.unpack_from(">4sQI", raw, offset)
            if tag == b"STAT":
                break
            offset += 16 + length
        start = offset + 16
        patched = raw[start : start + length].replace(b'"n":3', b'"n":4')
        assert patched != raw[start : start + length]
        path.write_bytes(
            raw[: offset + 4]
            + struct.pack(">QI", len(patched), zlib.crc32(patched) & 0xFFFFFFFF)
            + patched
            + raw[start + length :]
        )
        with pytest.raises(CorruptSnapshotError) as info:
            read_snapshot(path)
        assert "vertex count" in info.value.message

    def test_noncanonical_edge_rejected(self, tmp_path):
        state = self._state()
        state["edges"][0] = [1, 0]
        path = tmp_path / "bad.esd"
        write_snapshot(path, state, fsync=False)
        with pytest.raises(CorruptSnapshotError) as info:
            read_snapshot(path)
        assert "canonical" in info.value.message

    def test_comp_misalignment_rejected(self, tmp_path):
        state = self._state()
        state["components"] = state["components"][:-1]
        path = tmp_path / "bad.esd"
        write_snapshot(path, state, fsync=False)
        with pytest.raises(CorruptSnapshotError) as info:
            read_snapshot(path)
        assert "misalignment" in info.value.message

    def test_negative_version_rejected(self, tmp_path):
        state = self._state()
        state["graph_version"] = -1
        path = tmp_path / "bad.esd"
        write_snapshot(path, state, fsync=False)
        with pytest.raises(CorruptSnapshotError):
            read_snapshot(path)
