"""Crash-recovery tests: every fault mode either recovers exactly or
fails loudly with a structured error -- never silently wrong scores.

The scenarios map one-to-one onto the failure taxonomy in
``docs/PERSISTENCE.md``: torn final WAL record (crash during append),
corrupted section/record checksums (bit rot), missing snapshot, stale
snapshot + long WAL (crash between snapshot rename and WAL compaction),
and injected crashes at every checkpoint of the write path.
"""

import os

import pytest

from repro.core.build import build_index_fast
from repro.graph.generators import gnm_random
from repro.persistence import (
    CorruptSnapshotError,
    CorruptWALError,
    DataDirectory,
    FaultInjector,
    InjectedCrash,
    MissingSnapshotError,
    RecoveryError,
)
from repro.persistence.faults import (
    corrupt_snapshot_section,
    corrupt_wal_record,
    tear_wal_tail,
)
from repro.persistence.fsck import fsck_data_dir
from repro.persistence.store import SNAPSHOT_NAME, WAL_NAME
from repro.persistence.wal import scan_wal
from repro.service.engine import QueryEngine

QUERIES = ((5, 1), (10, 2), (3, 3))


def _base_graph():
    return gnm_random(24, 90, seed=42)


def _run_engine(tmp_dir, mutations=12, snapshot_interval=1000, faults=None):
    """Bootstrap a persistent engine and churn some mutations through it.

    Returns ``(store, engine)`` still open -- tests decide whether to
    crash, mangle files, or close cleanly.
    """
    store = DataDirectory(tmp_dir, fsync=False, faults=faults)
    dyn, _ = store.open(bootstrap_graph=_base_graph())
    engine = QueryEngine(
        dynamic_index=dyn,
        store=store,
        snapshot_interval=snapshot_interval,
        batch_window=0.0,
    )
    for i in range(mutations):
        engine.update("insert", 100 + i, 101 + i)
    return store, engine


def _assert_matches_rebuild(dyn):
    """The acceptance-criterion oracle: recovered ≡ fresh rebuild."""
    dyn.check_invariants()
    fresh = build_index_fast(dyn.graph)
    for k, tau in QUERIES:
        assert dyn.topk(k, tau) == fresh.topk(k, tau)


class TestCleanPaths:
    def test_bootstrap_then_reopen(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=0)
        store.close()
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert not report.bootstrapped
        assert report.final_version == 0
        _assert_matches_rebuild(dyn)

    def test_wal_replay_restores_acknowledged_mutations(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=7)
        version = engine.graph_version
        store.close()  # crash-style: no engine.close(), no compaction
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.records_replayed == 7
        assert dyn.graph_version == version == 7
        _assert_matches_rebuild(dyn)

    def test_compaction_truncates_wal(self, tmp_path):
        store, engine = _run_engine(
            str(tmp_path), mutations=10, snapshot_interval=4
        )
        # 10 mutations, interval 4 -> compactions at 4 and 8; 2 left over.
        assert store.snapshots_written >= 2
        assert len(scan_wal(store.wal_path).records) == 2
        store.close()
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.records_replayed == 2
        assert dyn.graph_version == 10
        _assert_matches_rebuild(dyn)

    def test_clean_shutdown_compacts(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=5)
        engine.close()
        assert len(scan_wal(os.path.join(str(tmp_path), WAL_NAME)).records) == 0
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.records_replayed == 0
        assert dyn.graph_version == 5
        _assert_matches_rebuild(dyn)


class TestTornWAL:
    def test_torn_final_record_truncated_and_recovered(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=6)
        store.close()
        tear_wal_tail(os.path.join(str(tmp_path), WAL_NAME))
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        # Only the final (by construction unacknowledged) mutation is lost.
        assert report.records_replayed == 5
        assert report.torn_tail_truncated_bytes > 0
        assert dyn.graph_version == 5
        _assert_matches_rebuild(dyn)

    def test_injected_partial_append_is_a_real_torn_tail(self, tmp_path):
        faults = FaultInjector().crash_at("wal.append.partial")
        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.faults = faults
        store.wal._faults = faults
        with pytest.raises(InjectedCrash):
            engine.update("insert", 200, 201)
        store.wal._file.close()  # simulate the process dying
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.torn_tail_truncated_bytes > 0
        assert report.records_replayed == 3
        assert not dyn.graph.has_edge(200, 201)
        _assert_matches_rebuild(dyn)

    def test_wal_logged_but_never_applied_replays(self, tmp_path):
        """Crash after the fsync, before the index mutation: the record
        is durable, so recovery must (re)apply it."""
        faults = FaultInjector().crash_at("wal.append.after")
        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.faults = faults
        store.wal._faults = faults
        with pytest.raises(InjectedCrash):
            engine.update("insert", 200, 201)
        store.wal._file.close()
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.records_replayed == 4
        assert dyn.graph.has_edge(200, 201)
        _assert_matches_rebuild(dyn)


class TestCorruption:
    def test_corrupt_snapshot_section_fails_loudly(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=2)
        store.close()
        corrupt_snapshot_section(
            os.path.join(str(tmp_path), SNAPSHOT_NAME), b"COMP"
        )
        with pytest.raises(CorruptSnapshotError) as info:
            DataDirectory(str(tmp_path), fsync=False).open()
        assert info.value.details["section"] == "COMP"
        report = fsck_data_dir(str(tmp_path))
        assert not report.ok
        assert any(i.code == "corrupt_snapshot" for i in report.errors)

    def test_corrupt_mid_wal_record_fails_loudly(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=5)
        store.close()
        corrupt_wal_record(os.path.join(str(tmp_path), WAL_NAME), index=2)
        with pytest.raises(CorruptWALError):
            DataDirectory(str(tmp_path), fsync=False).open()
        report = fsck_data_dir(str(tmp_path))
        assert any(i.code == "corrupt_wal" for i in report.errors)


class TestMissingAndInconsistent:
    def test_missing_snapshot_without_bootstrap(self, tmp_path):
        with pytest.raises(MissingSnapshotError) as info:
            DataDirectory(str(tmp_path / "empty"), fsync=False).open()
        assert "path" in info.value.details

    def test_wal_without_snapshot_refuses(self, tmp_path):
        store, engine = _run_engine(str(tmp_path), mutations=4)
        store.close()
        os.remove(os.path.join(str(tmp_path), SNAPSHOT_NAME))
        with pytest.raises(RecoveryError):
            DataDirectory(str(tmp_path), fsync=False).open(
                bootstrap_graph=_base_graph()
            )

    def test_version_gap_refuses(self, tmp_path):
        from repro.persistence.wal import WriteAheadLog

        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.close()
        # Forge a record that skips a version.
        with WriteAheadLog(
            os.path.join(str(tmp_path), WAL_NAME), fsync=False
        ) as wal:
            wal.append("insert", 300, 301, 99)
        with pytest.raises(RecoveryError) as info:
            DataDirectory(str(tmp_path), fsync=False).open()
        assert info.value.details["expected"] == 4
        report = fsck_data_dir(str(tmp_path))
        assert any(i.code == "wal_version_gap" for i in report.errors)

    def test_inapplicable_record_refuses(self, tmp_path):
        from repro.persistence.wal import WriteAheadLog

        store, engine = _run_engine(str(tmp_path), mutations=1)
        store.close()
        # Claims to delete an edge the recovered graph does not have.
        with WriteAheadLog(
            os.path.join(str(tmp_path), WAL_NAME), fsync=False
        ) as wal:
            wal.append("delete", 900, 901, 2)
        with pytest.raises(RecoveryError) as info:
            DataDirectory(str(tmp_path), fsync=False).open()
        assert info.value.details["op"] == "delete"


class TestStaleSnapshotLongWAL:
    def test_crash_between_snapshot_and_compaction(self, tmp_path):
        """The WAL still holds records the snapshot already contains;
        recovery must skip them and replay only the genuine tail."""
        faults = FaultInjector().crash_at("snapshot.after_replace")
        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.faults = faults
        with pytest.raises(InjectedCrash):
            store.compact(engine.dynamic_index)
        # Snapshot is at v3 but the WAL still lists records 1..3.
        store.wal._file.close()
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.snapshot_version == 3
        assert report.records_skipped == 3
        assert report.records_replayed == 0
        assert dyn.graph_version == 3
        _assert_matches_rebuild(dyn)

    def test_crash_before_snapshot_rename_keeps_old_snapshot(self, tmp_path):
        faults = FaultInjector().crash_at("snapshot.after_tmp")
        store, engine = _run_engine(str(tmp_path), mutations=4)
        store.faults = faults
        with pytest.raises(InjectedCrash):
            store.compact(engine.dynamic_index)
        store.wal._file.close()
        assert os.path.exists(
            os.path.join(str(tmp_path), SNAPSHOT_NAME + ".tmp")
        )
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        # Old snapshot (v0) + full WAL replay; stale temp file removed.
        assert report.snapshot_version == 0
        assert report.records_replayed == 4
        assert "removed stale snapshot temp file" in report.notes
        assert not os.path.exists(
            os.path.join(str(tmp_path), SNAPSHOT_NAME + ".tmp")
        )
        _assert_matches_rebuild(dyn)

    def test_long_wal_against_old_snapshot(self, tmp_path):
        """Stale snapshot + long WAL: many records replay correctly."""
        store, engine = _run_engine(
            str(tmp_path), mutations=40, snapshot_interval=10_000
        )
        store.close()
        dyn, report = DataDirectory(str(tmp_path), fsync=False).open()
        assert report.snapshot_version == 0
        assert report.records_replayed == 40
        _assert_matches_rebuild(dyn)


class TestFsckCLI:
    def test_fsck_clean_directory(self, tmp_path, capsys):
        from repro.cli import main

        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.close()
        assert main(["fsck", str(tmp_path), "--deep"]) == 0
        out = capsys.readouterr().out
        assert "deep check passed" in out

    def test_fsck_torn_tail_is_warning_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.close()
        tear_wal_tail(os.path.join(str(tmp_path), WAL_NAME))
        assert main(["fsck", str(tmp_path)]) == 1
        assert "torn_wal_tail" in capsys.readouterr().out

    def test_fsck_corruption_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        store, engine = _run_engine(str(tmp_path), mutations=3)
        store.close()
        corrupt_snapshot_section(
            os.path.join(str(tmp_path), SNAPSHOT_NAME), b"EDGE"
        )
        assert main(["fsck", str(tmp_path)]) == 2
        assert "CORRUPT" in capsys.readouterr().out

    def test_fsck_missing_dir(self, tmp_path):
        from repro.cli import main

        assert main(["fsck", str(tmp_path / "nope")]) == 2
