"""Edge cases at the cache/version and admission-control boundaries.

The result cache is keyed by ``(k, τ, graph_version)``, so correctness
hinges on exactly when the version moves: a *failed* mutation must leave
both the version and the cached answers intact, while the retried
success must invalidate.  The backpressure tests pin the behaviour of a
saturated admission queue: rejected loudly, recovered cleanly.
"""

import threading

import pytest

from tests.conftest import wait_until

from repro.graph import paper_example_graph
from repro.service import (
    ESDServer,
    QueryEngine,
    ServerConfig,
    ServiceClient,
    ServiceError,
)


class TestCacheAcrossEqualVersions:
    def test_failed_insert_keeps_version_and_cache(self, fig1):
        engine = QueryEngine(fig1)
        first = engine.topk(5, 2)
        assert not first["cached"]
        version = engine.graph_version
        existing = tuple(fig1.edges())[0]
        with pytest.raises(ValueError):
            engine.update("insert", *existing)
        assert engine.graph_version == version
        again = engine.topk(5, 2)
        assert again["cached"]
        assert again["items"] == first["items"]

    def test_failed_delete_keeps_cache_hot(self, fig1):
        engine = QueryEngine(fig1)
        engine.topk(5, 2)
        with pytest.raises(KeyError):
            engine.update("delete", "nope-1", "nope-2")
        assert engine.topk(5, 2)["cached"]

    def test_failed_then_retried_mutation_invalidates_once(self, fig1):
        """A failed delete leaves the cache warm; the retried (successful)
        insert bumps the version, so the next query misses and recomputes
        against the new graph."""
        engine = QueryEngine(fig1)
        warm = engine.topk(5, 2)
        with pytest.raises(KeyError):
            engine.update("delete", "a", "not-a-vertex")
        assert engine.topk(5, 2)["cached"]

        applied = engine.update("insert", "a", "not-a-vertex")
        assert applied["graph_version"] == warm["graph_version"] + 1
        fresh = engine.topk(5, 2)
        assert not fresh["cached"]
        assert fresh["graph_version"] == warm["graph_version"] + 1

    def test_failed_mutation_appends_no_wal_record(self, fig1, tmp_path):
        """With a store attached, preconditions run before the WAL append:
        a rejected mutation must leave the log untouched, or replay would
        reapply an operation the server never acknowledged."""
        from repro.persistence import DataDirectory

        store = DataDirectory(str(tmp_path / "data"), fsync=False)
        dyn, _ = store.open(bootstrap_graph=fig1)
        engine = QueryEngine(dynamic_index=dyn, store=store)
        header_only = store.wal.size_bytes()  # fresh log: header, no records
        existing = tuple(fig1.edges())[0]
        with pytest.raises(ValueError):
            engine.update("insert", *existing)
        with pytest.raises(KeyError):
            engine.update("delete", "ghost-1", "ghost-2")
        assert store.wal.size_bytes() == header_only
        assert engine.metrics.snapshot()["counters"].get("wal_appends", 0) == 0
        engine.close()

    def test_cache_shared_across_connections(self):
        """Two clients at the same graph_version share one cached answer."""
        server = ESDServer(
            paper_example_graph(), ServerConfig(port=0, batch_window=0.0)
        ).start()
        try:
            with ServiceClient(*server.address) as one:
                first = one.topk(k=5, tau=2)
            with ServiceClient(*server.address) as two:
                second = two.topk(k=5, tau=2)
            assert second.cached
            assert second.items == first.items
            assert second.graph_version == first.graph_version
        finally:
            server.shutdown()


def _wait_slot_taken(server):
    """Block until the in-flight ``sleep`` request holds the one slot."""
    wait_until(
        lambda: server.engine.metrics_snapshot()["counters"].get(
            "inflight", 0
        ) >= 1,
        message="the sleeper taking the only admission slot",
    )


class TestBackpressureSaturation:
    def _server(self, **overrides):
        config = dict(
            port=0,
            debug=True,
            max_pending=1,
            queue_timeout=0.15,
            batch_window=0.0,
        )
        config.update(overrides)
        return ESDServer(paper_example_graph(), ServerConfig(**config)).start()

    def test_saturated_queue_rejects_with_overloaded(self):
        server = self._server()
        try:
            blocker = ServiceClient(*server.address)
            done = threading.Event()

            def occupy():
                blocker.request("sleep", seconds=1.5)
                done.set()

            thread = threading.Thread(target=occupy, daemon=True)
            thread.start()
            _wait_slot_taken(server)
            with ServiceClient(*server.address) as victim:
                with pytest.raises(ServiceError) as info:
                    victim.topk(k=3, tau=1)
                assert info.value.code == "overloaded"
                assert "capacity" in info.value.message
            done.wait(timeout=5)
            thread.join(timeout=5)
            blocker.close()
        finally:
            server.shutdown()

    def test_server_recovers_after_overload(self):
        """Once the slot frees, the same connection serves normally --
        overload is per-request backpressure, not a failure state."""
        server = self._server()
        try:
            blocker = ServiceClient(*server.address)
            thread = threading.Thread(
                target=lambda: blocker.request("sleep", seconds=0.8),
                daemon=True,
            )
            thread.start()
            _wait_slot_taken(server)
            with ServiceClient(*server.address) as client:
                with pytest.raises(ServiceError):
                    client.topk(k=3, tau=1)
                thread.join(timeout=5)
                reply = client.topk(k=3, tau=1)
                assert len(reply.items) == 3
            blocker.close()
        finally:
            server.shutdown()

    def test_overload_rejections_counted_in_metrics(self):
        server = self._server()
        try:
            blocker = ServiceClient(*server.address)
            thread = threading.Thread(
                target=lambda: blocker.request("sleep", seconds=0.8),
                daemon=True,
            )
            thread.start()
            _wait_slot_taken(server)
            with ServiceClient(*server.address) as client:
                with pytest.raises(ServiceError):
                    client.topk(k=3, tau=1)
                thread.join(timeout=5)
                counters = client.metrics()["counters"]
                rejected = counters.get("rejected_overload", 0)
            assert rejected >= 1
            blocker.close()
        finally:
            server.shutdown()
