"""QueryEngine tests: correctness, caching, snapshot consistency, feeds."""

import threading

import pytest

from repro.core import build_index_fast
from repro.core.monitor import TopKMonitor
from repro.graph import Graph, paper_example_graph
from repro.graph.generators import erdos_renyi
from repro.service.engine import QueryEngine
from repro.service.verify import graph_at_version, verify_topk_responses


def _items(index_topk):
    return [[u, v, s] for (u, v), s in index_topk]


class TestTopK:
    def test_matches_fresh_index(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        fresh = build_index_fast(fig1)
        for k, tau in [(1, 1), (5, 1), (10, 2), (3, 3)]:
            payload = engine.topk(k, tau)
            assert payload["items"] == _items(fresh.topk(k, tau))
            assert payload["graph_version"] == 0

    def test_repeat_query_hits_cache(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        first = engine.topk(5, 2)
        second = engine.topk(5, 2)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["items"] == first["items"]

    def test_validation(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        for bad in [(0, 1), (1, 0), ("5", 1), (1, True)]:
            with pytest.raises(ValueError):
                engine.topk(*bad)


class TestUpdateAndInvalidation:
    def test_update_bumps_version_and_invalidates(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        before = engine.topk(5, 1)
        result = engine.update("insert", "a", "p")
        assert result["graph_version"] == 1
        after = engine.topk(5, 1)
        assert after["cached"] is False  # version key changed
        assert after["graph_version"] == 1
        # and the new answer matches a from-scratch rebuild
        expected = build_index_fast(engine.dynamic_index.graph)
        assert after["items"] == _items(expected.topk(5, 1))
        assert before["graph_version"] == 0

    def test_update_errors_do_not_bump_version(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        with pytest.raises(ValueError):
            engine.update("insert", "a", "b")  # already present
        with pytest.raises(KeyError):
            engine.update("delete", "zz", "zy")  # absent
        with pytest.raises(ValueError):
            engine.update("upsert", "a", "b")  # unknown action
        assert engine.graph_version == 0

    def test_score_and_stats_track_updates(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        assert engine.stats()["mutations"]["total"] == 0
        engine.update("delete", "a", "b")
        stats = engine.stats()
        assert stats["graph_version"] == 1
        assert stats["mutations"] == {
            "insertions": 0, "deletions": 1, "total": 1,
        }
        score = engine.score("a", "b")
        assert score["in_graph"] is False and score["score"] == 0


class TestSnapshotConsistency:
    def test_concurrent_reads_audit_clean_against_replay(self):
        graph = erdos_renyi(40, 0.15, seed=7)
        engine = QueryEngine(graph, batch_window=0.001)
        edges = sorted(graph.edges())
        updates = []
        payloads = []
        lock = threading.Lock()

        def writer():
            # Toggle a private slice of edges: delete then re-insert.
            for edge in edges[:20]:
                for action in ("delete", "insert"):
                    result = engine.update(action, *edge)
                    with lock:
                        updates.append((result["graph_version"], action, edge))

        def reader():
            for _ in range(12):
                payload = engine.topk(5, 1)
                with lock:
                    payloads.append((5, 1, payload))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(updates) == 40
        assert payloads, "readers never completed a query"
        mismatches = verify_topk_responses(graph, updates, payloads)
        assert mismatches == []

    def test_graph_at_version_detects_log_gaps(self):
        graph = Graph([(0, 1)])
        with pytest.raises(ValueError):
            graph_at_version(graph, [(2, "insert", (1, 2))], 2)
        with pytest.raises(ValueError):
            graph_at_version(graph, [(1, "insert", (1, 2))], 5)


class TestWatches:
    def test_watch_feed_matches_independent_monitor(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        reference = TopKMonitor(fig1, k=3, tau=1)
        watch_id = engine.watch(3, 1)["watch_id"]

        script = [("insert", ("a", "p")), ("delete", ("b", "c")),
                  ("insert", ("b", "c"))]
        expected = []
        for action, (u, v) in script:
            engine.update(action, u, v)
            change = (
                reference.insert(u, v) if action == "insert"
                else reference.delete(u, v)
            )
            if change.changed:
                expected.append(change)

        feed = engine.changes(watch_id)["changes"]
        assert len(feed) == len(expected)
        for served, truth in zip(feed, expected):
            assert served["update"] == truth.update
            assert served["entered"] == [[u, v, s] for (u, v), s in truth.entered]
            assert served["left"] == [[u, v, s] for (u, v), s in truth.left]
        # the feed is drained
        assert engine.changes(watch_id)["changes"] == []

    def test_unwatch_and_missing_watch(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        watch_id = engine.watch(2, 1)["watch_id"]
        assert engine.unwatch(watch_id)["removed"] is True
        with pytest.raises(KeyError):
            engine.changes(watch_id)
        with pytest.raises(KeyError):
            engine.unwatch(watch_id)

    def test_metrics_snapshot_shape(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.topk(5, 2)
        engine.topk(5, 2)
        snapshot = engine.metrics_snapshot()
        assert snapshot["cache"]["hits"] >= 1
        assert snapshot["batcher"]["requests"] >= 1
        assert "topk" in snapshot["endpoints"]
        assert snapshot["graph_version"] == 0

    def test_metrics_include_kernel_counters(self, fig1):
        from repro.kernels.counters import KERNEL_COUNTERS

        engine = QueryEngine(fig1, batch_window=0.0)
        snapshot = engine.obs.snapshot()
        assert snapshot["kernels"] == KERNEL_COUNTERS.snapshot()
        assert "merge_intersections" in snapshot["kernels"]
