"""Engine-side metric maintenance: batch fan-out and the warmer thread.

The batch satellite's contract: scorers hear about a commit group
exactly once, with the whole ordered event list -- one ``on_batch``
call per ``apply_batch`` (or per single update), never one per edge.
The warmer's contract: with ``warm_metrics`` set, a mutation eventually
repopulates the named scorers' tables off the query path, and
``close()`` stops the thread.
"""

from __future__ import annotations

import time

from repro.core.maintenance import DynamicESDIndex
from repro.graph import Graph, paper_example_graph
from repro.metrics import MetricScorer, get_metric, register_metric
from repro.metrics.scorers import _REGISTRY
from repro.service.engine import QueryEngine


class SpyScorer(MetricScorer):
    """Records every maintenance hook call; scores are irrelevant."""

    name = "spy"

    def __init__(self) -> None:
        self.batches = []
        self.mutations = []
        self.warmed = []

    def score(self, graph, edge, *, tau=2, index=None):
        return 0

    def topk(self, graph, k, *, tau=2, index=None):
        return []

    def on_mutation(self, kind, edge, version):
        self.mutations.append((kind, edge, version))

    def on_batch(self, events, version):
        self.batches.append((list(events), version))

    def warm(self, graph):
        self.warmed.append(graph.revision)


def with_spy(fn):
    """Run ``fn(spy)`` with the spy registered, restoring the registry."""
    spy = SpyScorer()
    register_metric(spy, replace=True)
    try:
        return fn(spy)
    finally:
        _REGISTRY.pop("spy", None)


class TestBatchFanOut:
    def test_apply_batch_notifies_each_scorer_once(self):
        def scenario(spy):
            dyn = DynamicESDIndex(paper_example_graph())
            QueryEngine(dynamic_index=dyn)
            dyn.apply_batch(
                deletions=[("a", "b")],
                insertions=[("x", "y"), ("y", "z")],
            )
            assert len(spy.batches) == 1
            events, version = spy.batches[0]
            assert events == [
                ("delete", ("a", "b")),
                ("insert", ("x", "y")),
                ("insert", ("y", "z")),
            ]
            assert version == dyn.graph_version

        with_spy(scenario)

    def test_single_update_is_a_one_event_group(self):
        def scenario(spy):
            engine = QueryEngine(paper_example_graph())
            engine.update("insert", "x", "y")
            assert len(spy.batches) == 1
            events, _version = spy.batches[0]
            assert events == [("insert", ("x", "y"))]

        with_spy(scenario)

    def test_failed_batch_still_reports_applied_prefix(self):
        def scenario(spy):
            dyn = DynamicESDIndex(Graph([("a", "b"), ("b", "c")]))
            QueryEngine(dynamic_index=dyn)
            try:
                dyn.apply_batch(
                    insertions=[("c", "d"), ("c", "d")]  # duplicate fails
                )
            except ValueError:
                pass
            else:
                raise AssertionError("expected duplicate insert to fail")
            # The scorers must still hear about what *did* commit, or
            # their tables drift from the graph.
            assert len(spy.batches) == 1
            events, _version = spy.batches[0]
            assert events == [("insert", ("c", "d"))]

        with_spy(scenario)


class TestWarmer:
    def test_unknown_warm_metric_fails_at_construction(self):
        try:
            QueryEngine(paper_example_graph(), warm_metrics=["nope"])
        except ValueError:
            return
        raise AssertionError("expected unknown warm metric to raise")

    def test_mutation_triggers_background_warm_pass(self):
        engine = QueryEngine(paper_example_graph(), warm_metrics=["truss"])
        try:
            truss = get_metric("truss")
            computes_before = truss._memo.computes
            engine.update("insert", "warm_u", "warm_v")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                counters = engine.metrics.snapshot()["counters"]
                if counters.get("metric_warm_passes", 0) >= 1:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("warmer never completed a pass")
            assert truss._memo.computes > computes_before
        finally:
            engine.close()
        assert engine._warm_thread is None

    def test_no_warm_metrics_means_no_thread(self):
        engine = QueryEngine(paper_example_graph())
        assert engine._warm_thread is None
        engine.close()
