"""The ``metric=`` surface: engine keys, batcher isolation, protocol."""

import json
import threading

import pytest

from repro.core import build_index_fast
from repro.graph import paper_example_graph
from repro.metrics import get_metric
from repro.service.batcher import TopKBatcher
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.server import ESDServer, ServerConfig


def _items(index_topk):
    return [[u, v, s] for (u, v), s in index_topk]


class TestEngineMetricSurface:
    def test_default_metric_is_bit_identical_to_explicit_esd(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        implicit = engine.topk(5, 2)
        engine_two = QueryEngine(paper_example_graph(), batch_window=0.0)
        explicit = engine_two.topk(5, 2, metric="esd")
        assert implicit["items"] == explicit["items"]
        assert implicit["items"] == _items(build_index_fast(fig1).topk(5, 2))

    def test_each_metric_answers_through_its_scorer(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        for name in ("truss", "betweenness", "common_neighbors"):
            payload = engine.topk(5, 2, metric=name)
            expected = get_metric(name).topk(engine.dynamic_index.graph, 5)
            assert payload["metric"] == name
            assert payload["items"] == _items(expected)

    def test_cross_metric_cache_isolation(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        esd = engine.topk(5, 2, metric="esd")
        truss = engine.topk(5, 2, metric="truss")
        assert esd["cached"] is False and truss["cached"] is False
        assert esd["items"] != truss["items"]
        # Repeats hit their own entries -- same (k, tau), different metric.
        assert engine.topk(5, 2, metric="esd")["cached"] is True
        assert engine.topk(5, 2, metric="truss")["cached"] is True
        assert engine.topk(5, 2, metric="truss")["items"] == truss["items"]

    def test_mutation_invalidates_every_metric(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.topk(5, 2, metric="esd")
        engine.topk(5, 2, metric="truss")
        engine.update("insert", "a", "p")
        for name in ("esd", "truss"):
            after = engine.topk(5, 2, metric=name)
            assert after["cached"] is False
            assert after["graph_version"] == 1

    def test_unknown_metric_raises_before_touching_the_index(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        with pytest.raises(ValueError, match="unknown metric 'pagerank'"):
            engine.topk(5, 2, metric="pagerank")
        with pytest.raises(ValueError, match="metric must be a string"):
            engine.topk(5, 2, metric=7)  # type: ignore[arg-type]

    def test_score_carries_metric(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        default = engine.score("a", "b")
        assert default["metric"] == "esd"
        truss = engine.score("a", "b", metric="truss")
        assert truss["metric"] == "truss"
        assert truss["score"] == get_metric("truss").score(
            engine.dynamic_index.graph, ("a", "b")
        )

    def test_watch_is_esd_only(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        assert "watch_id" in engine.watch(5, 2, metric="esd")
        with pytest.raises(ValueError, match="watch supports only"):
            engine.watch(5, 2, metric="truss")

    def test_per_metric_latency_labels(self, fig1):
        engine = QueryEngine(fig1, batch_window=0.0)
        engine.topk(5, 2, metric="esd")
        engine.topk(5, 2, metric="truss")
        endpoints = engine.metrics.snapshot()["endpoints"]
        assert endpoints["topk"]["requests"] == 2  # aggregate stays exact
        assert endpoints["topk|metric=esd"]["requests"] == 1
        assert endpoints["topk|metric=truss"]["requests"] == 1

    def test_labeled_series_stay_out_of_the_slow_log(self, fig1):
        engine = QueryEngine(
            fig1, batch_window=0.0, slow_query_threshold=1e-9
        )
        engine.topk(5, 2, metric="truss")
        entries = engine.slow_log.snapshot()["entries"]
        assert entries  # the aggregate endpoint recorded the slow query
        assert all("|" not in entry["endpoint"] for entry in entries)


class TestCacheKeySchema:
    def test_purge_stale_with_metric_prefixed_keys(self):
        cache = ResultCache(16)
        cache.put(("esd", 5, 2, 3), {"v": 1})
        cache.put(("truss", 5, 2, 3), {"v": 2})
        cache.put(("esd", 5, 2, 7), {"v": 3})
        assert cache.purge_stale(7) == 2  # both version-3 entries, any metric
        assert cache.get(("esd", 5, 2, 7)) == (True, {"v": 3})
        assert cache.get(("esd", 5, 2, 3))[0] is False
        assert cache.get(("truss", 5, 2, 3))[0] is False


class TestBatcherMetricKeys:
    def test_metrics_never_coalesce_into_one_result(self):
        seen_batches = []

        def execute(keys):
            seen_batches.append(sorted(keys))
            return {key: key[0] for key in keys}

        batcher = TopKBatcher(execute, window=0.05)
        results = {}

        def query(metric):
            results[metric] = batcher.submit((metric, 5, 2))

        threads = [
            threading.Thread(target=query, args=(m,))
            for m in ("esd", "truss")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["esd"][0] == "esd"
        assert results["truss"][0] == "truss"
        # Distinct keys, even when one batch served both.
        assert sorted(key for batch in seen_batches for key in batch) == [
            ("esd", 5, 2), ("truss", 5, 2),
        ]


class TestBatcherPerWaiterErrors:
    def test_concurrent_waiters_get_distinct_exception_instances(self):
        def execute(keys):
            raise RuntimeError("index on fire")

        # A wide window so both barrier-released submissions land in the
        # one batch whose failure they both observe.
        batcher = TopKBatcher(execute, window=0.25)
        caught = {}
        started = threading.Barrier(2)

        def query(name, key):
            started.wait()
            try:
                batcher.submit(key)
            except RuntimeError as exc:
                caught[name] = exc

        threads = [
            threading.Thread(target=query, args=("a", ("esd", 5, 2))),
            threading.Thread(target=query, args=("b", ("esd", 9, 2))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(caught) == {"a", "b"}
        a, b = caught["a"], caught["b"]
        # Each waiter raised its own instance (no shared __traceback__
        # mutation across threads), same type and message, chained to
        # one shared original.
        assert a is not b
        assert str(a) == str(b) == "index on fire"
        assert a.__cause__ is b.__cause__
        assert str(a.__cause__) == "index on fire"
        assert a.__traceback__ is not b.__traceback__


class TestServerMetricProtocol:
    @pytest.fixture
    def server(self):
        with ESDServer(
            paper_example_graph(),
            ServerConfig(port=0, batch_window=0.0),
        ) as instance:
            yield instance

    def _request(self, server, **message):
        return server.handle_line(json.dumps(message).encode())

    def test_topk_metric_roundtrip(self, server):
        ok = self._request(server, op="topk", k=3, metric="truss")
        assert ok["ok"] is True
        assert ok["result"]["metric"] == "truss"
        default = self._request(server, op="topk", k=3)
        assert default["result"]["metric"] == "esd"

    def test_unknown_metric_maps_to_invalid_argument(self, server):
        bad = self._request(server, op="topk", k=3, metric="pagerank")
        assert bad["ok"] is False
        assert bad["error"]["code"] == "invalid_argument"
        wrong_type = self._request(server, op="topk", k=3, metric=5)
        assert wrong_type["error"]["code"] == "invalid_argument"

    def test_score_and_watch_metric_fields(self, server):
        score = self._request(server, op="score", u="a", v="b", metric="truss")
        assert score["result"]["metric"] == "truss"
        watch = self._request(server, op="watch", k=3, metric="truss")
        assert watch["ok"] is False
        assert watch["error"]["code"] == "invalid_argument"

    def test_metrics_text_has_disjoint_per_metric_series(self, server):
        self._request(server, op="topk", k=3, metric="esd")
        self._request(server, op="topk", k=3, metric="truss")
        text = server.metrics_text()
        assert 'esd_endpoint_requests{endpoint="topk"} 2' in text
        assert (
            'esd_endpoint_requests{endpoint="topk",metric="esd"} 1' in text
        )
        assert (
            'esd_endpoint_requests{endpoint="topk",metric="truss"} 1' in text
        )
