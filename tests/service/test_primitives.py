"""Unit tests for the serving-layer building blocks."""

import threading
import time

import pytest

from repro.service.batcher import TopKBatcher
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry, percentile
from repro.service.rwlock import RWLock


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three readers hold the lock at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        def writer(tag):
            with lock.write_locked():
                log.append(f"{tag}-in")
                time.sleep(0.02)
                log.append(f"{tag}-out")

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Critical sections never interleave: in/out strictly alternate.
        for i in range(0, len(log), 2):
            assert log[i].endswith("-in") and log[i + 1].endswith("-out")
            assert log[i].split("-")[0] == log[i + 1].split("-")[0]

    def test_write_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_waiting = threading.Event()
        order = []

        def writer():
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            with lock.read_locked():
                order.append("reader")

        w = threading.Thread(target=writer)
        w.start()
        writer_waiting.wait(timeout=5)
        time.sleep(0.05)  # let the writer actually block on the lock
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order[0] == "writer"  # the late reader queued behind the writer

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", 0), 1)
        cache.put(("b", 0), 2)
        assert cache.get(("a", 0)) == (True, 1)  # refreshes 'a'
        cache.put(("c", 0), 3)  # evicts 'b', the LRU entry
        assert cache.get(("b", 0)) == (False, None)
        assert cache.get(("a", 0)) == (True, 1)
        assert cache.get(("c", 0)) == (True, 3)
        assert cache.evictions == 1
        assert cache.hits == 3 and cache.misses == 1

    def test_purge_stale_drops_old_versions_only(self):
        cache = ResultCache(capacity=8)
        cache.put((10, 2, 0), "v0")
        cache.put((10, 2, 1), "v1")
        cache.put((50, 3, 1), "v1b")
        assert cache.purge_stale(1) == 1
        assert cache.get((10, 2, 0)) == (False, None)
        assert cache.get((10, 2, 1)) == (True, "v1")
        assert cache.get((50, 3, 1)) == (True, "v1b")

    def test_hit_rate(self):
        cache = ResultCache(capacity=2)
        assert cache.hit_rate == 0.0
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        assert cache.hit_rate == 0.5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_purge_stale_rejects_schema_violating_keys(self):
        """Regression: a non-``(..., version)`` key used to be silently
        skipped by ``purge_stale`` and retained forever; it is a caller
        bug and must fail loudly instead."""
        cache = ResultCache(capacity=8)
        cache.put((10, 2, 3), "fine")
        cache.put("just-a-string", "schema violation")
        with pytest.raises(ValueError, match="tuple schema"):
            cache.purge_stale(4)

    def test_purge_stale_rejects_bool_version_component(self):
        # bool is an int subtype but never a graph version.
        cache = ResultCache(capacity=8)
        cache.put((10, 2, True), "x")
        with pytest.raises(ValueError, match="tuple schema"):
            cache.purge_stale(1)

    def test_stats_snapshot_is_internally_consistent(self):
        cache = ResultCache(capacity=4)
        cache.put((1, 1, 0), "a")
        cache.get((1, 1, 0))
        cache.get((9, 9, 0))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_stats_consistent_under_concurrent_load(self):
        """Regression: ``stats()``/``hit_rate`` used to read the counters
        field-by-field outside ``_lock``, so a snapshot could report a
        hit rate computed from different counter values than the ones in
        the same snapshot.  Every snapshot must now satisfy
        ``hit_rate == round(hits / (hits + misses), 4)`` exactly."""
        import random

        cache = ResultCache(capacity=32)
        stop = threading.Event()

        def hammer(seed):
            rng = random.Random(seed)
            while not stop.is_set():
                key = (rng.randrange(12), 2, 0)
                hit, _ = cache.get(key)
                if not hit:
                    cache.put(key, "payload")

        workers = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(4)
        ]
        for t in workers:
            t.start()
        try:
            for _ in range(300):
                stats = cache.stats()
                total = stats["hits"] + stats["misses"]
                if total:
                    assert stats["hit_rate"] == round(
                        stats["hits"] / total, 4
                    )
                assert cache.hit_rate <= 1.0
        finally:
            stop.set()
            for t in workers:
                t.join(timeout=5)
        assert not any(t.is_alive() for t in workers)


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 1.0) == 100
        assert percentile(samples, 0.5) == 51  # nearest rank on 100 samples
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 1.5)

    def test_timed_records_errors_and_latency(self):
        registry = MetricsRegistry()
        with registry.timed("op"):
            pass
        with pytest.raises(RuntimeError):
            with registry.timed("op"):
                raise RuntimeError("boom")
        snapshot = registry.snapshot()
        assert snapshot["endpoints"]["op"]["requests"] == 2
        assert snapshot["endpoints"]["op"]["errors"] == 1
        assert snapshot["endpoints"]["op"]["p99_ms"] >= 0

    def test_counters(self):
        registry = MetricsRegistry()
        registry.incr("rejected", 3)
        registry.incr("rejected")
        assert registry.snapshot()["counters"] == {"rejected": 4}


class TestPercentileBoundaries:
    """Regression for the ceil-based nearest rank: ``round()`` (banker's
    rounding) under-reported the tail -- p99 over a full 100-sample
    window returned the 99th-worst sample instead of the worst."""

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert percentile([42], fraction) == 42

    def test_p99_over_100_samples_is_the_maximum(self):
        samples = list(range(1, 101))
        # ceil(0.99 * 99) = 99 -> the worst sample; round() gave 98 -> 99.
        assert percentile(samples, 0.99) == 100

    def test_boundary_fractions_over_100_samples(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 0.5) == 51
        assert percentile(samples, 1.0) == 100

    def test_two_samples_round_up(self):
        assert percentile([1, 2], 0.5) == 2  # ceil(0.5 * 1) = 1
        assert percentile([1, 2], 0.99) == 2
        assert percentile([1, 2], 0.0) == 1

    def test_never_below_true_quantile(self):
        """Ceil rounding means at least ``fraction`` of the samples are
        <= the reported value, for every window size."""
        for n in (1, 2, 3, 7, 100, 101):
            samples = list(range(n))
            for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
                value = percentile(samples, fraction)
                at_or_below = sum(1 for s in samples if s <= value)
                assert at_or_below / n >= fraction

    def test_unsorted_input_handled(self):
        assert percentile([5, 1, 9, 3], 1.0) == 9
        assert percentile([5, 1, 9, 3], 0.0) == 1


class TestTopKBatcher:
    def test_single_flight_shares_one_execution(self):
        calls = []
        gate = threading.Event()

        def execute(keys):
            calls.append(sorted(keys))
            gate.wait(timeout=5)
            return {key: f"result-{key}" for key in keys}

        batcher = TopKBatcher(execute, window=0.05)
        results = [None] * 6

        def submit(i):
            results[i] = batcher.submit((10, 2))

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.15)  # everyone lands inside the leader's window
        gate.set()
        for t in threads:
            t.join(timeout=5)
        assert len(calls) == 1  # six submits, one execution
        assert all(value == ("result-(10, 2)", 6) for value in results)
        assert batcher.stats()["coalesced"] == 5

    def test_distinct_keys_one_pass(self):
        calls = []

        def execute(keys):
            calls.append(sorted(keys))
            return {key: key[0] * key[1] for key in keys}

        batcher = TopKBatcher(execute, window=0.05)
        out = {}

        def submit(key):
            out[key] = batcher.submit(key)

        threads = [
            threading.Thread(target=submit, args=(key,))
            for key in [(10, 2), (50, 3), (10, 2)]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert sum(len(keys) for keys in calls) == 2  # two distinct keys total
        assert out[(10, 2)][0] == 20 and out[(50, 3)][0] == 150

    def test_execute_failure_propagates_to_all_waiters(self):
        def execute(keys):
            raise RuntimeError("index on fire")

        batcher = TopKBatcher(execute, window=0.0)
        with pytest.raises(RuntimeError, match="index on fire"):
            batcher.submit((10, 2))

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            TopKBatcher(lambda keys: {}, window=-1)
