"""Unit tests for the serving-layer building blocks."""

import threading
import time

import pytest

from repro.service.batcher import TopKBatcher
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry, percentile
from repro.service.rwlock import RWLock


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three readers hold the lock at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        def writer(tag):
            with lock.write_locked():
                log.append(f"{tag}-in")
                time.sleep(0.02)
                log.append(f"{tag}-out")

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Critical sections never interleave: in/out strictly alternate.
        for i in range(0, len(log), 2):
            assert log[i].endswith("-in") and log[i + 1].endswith("-out")
            assert log[i].split("-")[0] == log[i + 1].split("-")[0]

    def test_write_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_waiting = threading.Event()
        order = []

        def writer():
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            with lock.read_locked():
                order.append("reader")

        w = threading.Thread(target=writer)
        w.start()
        writer_waiting.wait(timeout=5)
        time.sleep(0.05)  # let the writer actually block on the lock
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order[0] == "writer"  # the late reader queued behind the writer

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", 0), 1)
        cache.put(("b", 0), 2)
        assert cache.get(("a", 0)) == (True, 1)  # refreshes 'a'
        cache.put(("c", 0), 3)  # evicts 'b', the LRU entry
        assert cache.get(("b", 0)) == (False, None)
        assert cache.get(("a", 0)) == (True, 1)
        assert cache.get(("c", 0)) == (True, 3)
        assert cache.evictions == 1
        assert cache.hits == 3 and cache.misses == 1

    def test_purge_stale_drops_old_versions_only(self):
        cache = ResultCache(capacity=8)
        cache.put((10, 2, 0), "v0")
        cache.put((10, 2, 1), "v1")
        cache.put((50, 3, 1), "v1b")
        assert cache.purge_stale(1) == 1
        assert cache.get((10, 2, 0)) == (False, None)
        assert cache.get((10, 2, 1)) == (True, "v1")
        assert cache.get((50, 3, 1)) == (True, "v1b")

    def test_hit_rate(self):
        cache = ResultCache(capacity=2)
        assert cache.hit_rate == 0.0
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        assert cache.hit_rate == 0.5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 1.0) == 100
        assert percentile(samples, 0.5) == 51  # nearest rank on 100 samples
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 1.5)

    def test_timed_records_errors_and_latency(self):
        registry = MetricsRegistry()
        with registry.timed("op"):
            pass
        with pytest.raises(RuntimeError):
            with registry.timed("op"):
                raise RuntimeError("boom")
        snapshot = registry.snapshot()
        assert snapshot["endpoints"]["op"]["requests"] == 2
        assert snapshot["endpoints"]["op"]["errors"] == 1
        assert snapshot["endpoints"]["op"]["p99_ms"] >= 0

    def test_counters(self):
        registry = MetricsRegistry()
        registry.incr("rejected", 3)
        registry.incr("rejected")
        assert registry.snapshot()["counters"] == {"rejected": 4}


class TestTopKBatcher:
    def test_single_flight_shares_one_execution(self):
        calls = []
        gate = threading.Event()

        def execute(keys):
            calls.append(sorted(keys))
            gate.wait(timeout=5)
            return {key: f"result-{key}" for key in keys}

        batcher = TopKBatcher(execute, window=0.05)
        results = [None] * 6

        def submit(i):
            results[i] = batcher.submit((10, 2))

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.15)  # everyone lands inside the leader's window
        gate.set()
        for t in threads:
            t.join(timeout=5)
        assert len(calls) == 1  # six submits, one execution
        assert all(value == ("result-(10, 2)", 6) for value in results)
        assert batcher.stats()["coalesced"] == 5

    def test_distinct_keys_one_pass(self):
        calls = []

        def execute(keys):
            calls.append(sorted(keys))
            return {key: key[0] * key[1] for key in keys}

        batcher = TopKBatcher(execute, window=0.05)
        out = {}

        def submit(key):
            out[key] = batcher.submit(key)

        threads = [
            threading.Thread(target=submit, args=(key,))
            for key in [(10, 2), (50, 3), (10, 2)]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert sum(len(keys) for keys in calls) == 2  # two distinct keys total
        assert out[(10, 2)][0] == 20 and out[(50, 3)][0] == 150

    def test_execute_failure_propagates_to_all_waiters(self):
        def execute(keys):
            raise RuntimeError("index on fire")

        batcher = TopKBatcher(execute, window=0.0)
        with pytest.raises(RuntimeError, match="index on fire"):
            batcher.submit((10, 2))

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            TopKBatcher(lambda keys: {}, window=-1)
