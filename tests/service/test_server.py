"""End-to-end tests for the TCP server and JSON line protocol."""

import json
import socket
import threading

import pytest

from tests.conftest import wait_until

from repro.core import build_index_fast
from repro.graph import paper_example_graph
from repro.service import ESDServer, ServerConfig, ServiceClient, ServiceError
from repro.service.verify import verify_topk_responses


@pytest.fixture
def server():
    instance = ESDServer(
        paper_example_graph(),
        ServerConfig(port=0, debug=True, queue_timeout=5.0),
    ).start()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as c:
        yield c


class TestProtocol:
    def test_ping(self, client):
        assert client.ping()

    def test_request_id_echoed(self, server):
        with socket.create_connection(server.address) as sock:
            f = sock.makefile("rwb")
            f.write(b'{"op": "ping", "id": "abc"}\n')
            f.flush()
            response = json.loads(f.readline())
        assert response == {"ok": True, "result": "pong", "id": "abc"}

    def test_malformed_json_is_bad_request(self, server):
        with socket.create_connection(server.address) as sock:
            f = sock.makefile("rwb")
            f.write(b"{not json\n")
            f.flush()
            response = json.loads(f.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_non_object_and_missing_op(self, server):
        with socket.create_connection(server.address) as sock:
            f = sock.makefile("rwb")
            for raw in [b"[1, 2]\n", b'{"k": 5}\n']:
                f.write(raw)
                f.flush()
                response = json.loads(f.readline())
                assert response["error"]["code"] == "bad_request"

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("frobnicate")
        assert info.value.code == "unknown_op"

    def test_invalid_arguments(self, client):
        for fields in [{"k": 0}, {"k": "ten"}, {"tau": -1}, {"k": True}]:
            with pytest.raises(ServiceError) as info:
                client.request("topk", **fields)
            assert info.value.code == "invalid_argument"

    def test_blank_lines_ignored(self, server):
        with socket.create_connection(server.address) as sock:
            f = sock.makefile("rwb")
            f.write(b"\n\n")
            f.write(b'{"op": "ping"}\n')
            f.flush()
            assert json.loads(f.readline())["result"] == "pong"


class TestQueries:
    def test_topk_matches_fresh_index(self, client):
        fresh = build_index_fast(paper_example_graph())
        reply = client.topk(k=5, tau=2)
        assert reply.items == fresh.topk(5, 2)
        assert reply.graph_version == 0

    def test_score_and_stats(self, client):
        score = client.score("b", "c", tau=1)
        fresh = build_index_fast(paper_example_graph())
        assert score["score"] == fresh.score(("b", "c"), 1)
        stats = client.stats()
        assert stats["n"] == 16 and stats["graph_version"] == 0
        assert stats["index"]["edges"] > 0

    def test_cache_invalidation_over_the_wire(self, client):
        first = client.topk(k=5, tau=1)
        assert client.topk(k=5, tau=1).cached is True
        update = client.insert_edge("a", "p")
        assert update["graph_version"] == 1
        after = client.topk(k=5, tau=1)
        assert after.cached is False
        assert after.graph_version == 1
        client.delete_edge("a", "p")
        restored = client.topk(k=5, tau=1)
        assert restored.graph_version == 2
        assert restored.items == first.items  # same graph again

    def test_update_errors_are_structured(self, client):
        with pytest.raises(ServiceError) as duplicate:
            client.insert_edge("a", "b")
        assert duplicate.value.code == "invalid_argument"
        with pytest.raises(ServiceError) as missing:
            client.delete_edge("zz", "zy")
        assert missing.value.code == "not_found"
        with pytest.raises(ServiceError) as action:
            client.update("upsert", "a", "b")
        assert action.value.code == "invalid_argument"

    def test_watch_feed(self, client):
        watch = client.watch(k=3, tau=1)
        client.insert_edge("a", "p")
        client.delete_edge("a", "p")
        changes = client.changes(watch["watch_id"])
        assert isinstance(changes, list)
        assert client.unwatch(watch["watch_id"])["removed"] is True
        with pytest.raises(ServiceError) as info:
            client.changes(watch["watch_id"])
        assert info.value.code == "not_found"

    def test_metrics_endpoint(self, client):
        client.topk(k=5, tau=2)
        client.topk(k=5, tau=2)
        metrics = client.metrics()
        assert metrics["cache"]["hits"] >= 1
        assert metrics["endpoints"]["topk"]["requests"] >= 2
        assert "p99_ms" in metrics["endpoints"]["topk"]


class TestConcurrency:
    def test_concurrent_clients_consistent_and_cached(self, server):
        graph = paper_example_graph()
        host, port = server.address
        payloads = []
        updates = []
        lock = threading.Lock()
        errors = []

        def reader(cid):
            try:
                with ServiceClient(host, port) as c:
                    for _ in range(6):
                        result = c.request("topk", k=4, tau=1)
                        with lock:
                            payloads.append((4, 1, result))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        def writer():
            try:
                with ServiceClient(host, port) as c:
                    for _ in range(3):
                        for action, edge in [
                            ("insert", ("a", "p")), ("delete", ("a", "p")),
                        ]:
                            result = c.update(action, *edge)
                            with lock:
                                updates.append(
                                    (result["graph_version"], action, edge)
                                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(8)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert len(payloads) == 48 and len(updates) == 6
        assert verify_topk_responses(graph, updates, payloads) == []
        # repeated identical queries must have produced cache hits
        assert server.engine.metrics_snapshot()["cache"]["hits"] > 0

    def test_backpressure_returns_overloaded(self):
        tiny = ESDServer(
            paper_example_graph(),
            ServerConfig(port=0, max_pending=1, queue_timeout=0.05, debug=True),
        ).start()
        host, port = tiny.address
        try:
            started = threading.Event()

            def occupy():
                with ServiceClient(host, port) as c:
                    started.set()
                    c.request("sleep", seconds=1.0)

            thread = threading.Thread(target=occupy)
            thread.start()
            started.wait(timeout=5)
            wait_until(
                lambda: tiny.engine.metrics_snapshot()["counters"].get(
                    "inflight", 0
                ) >= 1,
                message="the sleeper taking the only admission slot",
            )
            with ServiceClient(host, port) as c:
                with pytest.raises(ServiceError) as info:
                    c.ping()
                assert info.value.code == "overloaded"
            thread.join(timeout=5)
            metrics = tiny.engine.metrics_snapshot()
            assert metrics["counters"].get("rejected_overload", 0) >= 1
        finally:
            tiny.shutdown()

    def test_sleep_requires_debug(self):
        plain = ESDServer(paper_example_graph(), ServerConfig(port=0)).start()
        try:
            with ServiceClient(*plain.address) as c:
                with pytest.raises(ServiceError) as info:
                    c.request("sleep", seconds=0.1)
                assert info.value.code == "unknown_op"
        finally:
            plain.shutdown()


class TestRestartErgonomics:
    """Rapid cycling, idempotent shutdown, metrics scraping (PR: cluster)."""

    def test_rapid_stop_start_on_same_port(self):
        # Bind an ephemeral port once, then cycle servers on that exact
        # port back to back: SO_REUSEADDR must spare us EADDRINUSE.
        probe = ESDServer(paper_example_graph(), ServerConfig(port=0))
        port = probe.address[1]
        probe.shutdown()
        for _ in range(3):
            instance = ESDServer(
                paper_example_graph(), ServerConfig(port=port)
            ).start()
            try:
                with ServiceClient(*instance.address) as c:
                    assert c.ping()
            finally:
                instance.shutdown()

    def test_shutdown_is_idempotent(self, server):
        server.shutdown()
        server.shutdown()  # second call is a no-op, not a hang/crash

    def test_shutdown_without_serving_does_not_hang(self):
        instance = ESDServer(paper_example_graph(), ServerConfig(port=0))
        instance.shutdown()  # never started: must return promptly

    def test_shutdown_severs_established_connections(self):
        instance = ESDServer(
            paper_example_graph(), ServerConfig(port=0)
        ).start()
        sock = socket.create_connection(instance.address)
        f = sock.makefile("rwb")
        f.write(b'{"op": "ping"}\n')
        f.flush()
        assert json.loads(f.readline())["result"] == "pong"
        instance.shutdown()
        assert f.readline() == b""  # peers see EOF, not a silent leak
        sock.close()

    def test_metrics_text_op(self, client):
        client.topk(k=3)
        result = client.request("metrics-text")
        assert result["content_type"].startswith("text/plain; version=0.0.4")
        assert "esd_graph_version 0" in result["text"]
        assert 'esd_endpoint_requests{endpoint="topk"} 1' in result["text"]

    def test_http_get_scrape(self, server):
        with socket.create_connection(server.address) as sock:
            sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        assert b"text/plain; version=0.0.4" in head
        assert b"esd_graph_version 0" in body
