"""Unit and property tests for the disjoint-set structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import DisjointSet, EdgeComponentSets


class TestDisjointSet:
    def test_empty(self):
        dsu = DisjointSet()
        assert len(dsu) == 0
        assert dsu.set_count == 0
        assert dsu.component_sizes() == []

    def test_singletons(self):
        dsu = DisjointSet(range(5))
        assert len(dsu) == 5
        assert dsu.set_count == 5
        assert sorted(dsu.component_sizes()) == [1, 1, 1, 1, 1]

    def test_find_unknown_raises(self):
        dsu = DisjointSet()
        with pytest.raises(KeyError):
            dsu.find("missing")

    def test_union_merges(self):
        dsu = DisjointSet(range(4))
        assert dsu.union(0, 1)
        assert dsu.connected(0, 1)
        assert not dsu.connected(0, 2)
        assert dsu.set_count == 3
        assert dsu.size_of(0) == 2
        assert dsu.size_of(2) == 1

    def test_union_idempotent(self):
        dsu = DisjointSet(range(3))
        assert dsu.union(0, 1)
        assert not dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.set_count == 2

    def test_union_adds_unknown_elements(self):
        dsu = DisjointSet()
        dsu.union("a", "b")
        assert dsu.connected("a", "b")
        assert len(dsu) == 2

    def test_transitive_connectivity(self):
        dsu = DisjointSet(range(5))
        dsu.union(0, 1)
        dsu.union(1, 2)
        dsu.union(3, 4)
        assert dsu.connected(0, 2)
        assert not dsu.connected(2, 3)
        assert sorted(dsu.component_sizes()) == [2, 3]

    def test_groups_partition(self):
        dsu = DisjointSet(range(6))
        dsu.union(0, 1)
        dsu.union(2, 3)
        dsu.union(3, 4)
        groups = dsu.groups()
        members = sorted(x for group in groups.values() for x in group)
        assert members == list(range(6))
        assert sorted(len(g) for g in groups.values()) == [1, 2, 3]

    def test_roots_are_self_parents(self):
        dsu = DisjointSet(range(10))
        for i in range(0, 10, 2):
            dsu.union(i, i + 1)
        assert len(dsu.roots()) == dsu.set_count == 5

    def test_add_is_idempotent(self):
        dsu = DisjointSet()
        dsu.add(1)
        dsu.union(1, 2)
        dsu.add(1)  # must not reset the merged set
        assert dsu.size_of(1) == 2

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            max_size=120,
        )
    )
    def test_matches_naive_partition(self, unions):
        """DSU connectivity must match a naive set-merging partition."""
        dsu = DisjointSet()
        naive = []  # list of sets

        def naive_union(a, b):
            sa = next((s for s in naive if a in s), None)
            sb = next((s for s in naive if b in s), None)
            if sa is None:
                sa = {a}
                naive.append(sa)
            if sb is None:
                if b in sa:
                    return
                sb = {b}
                naive.append(sb)
            if sa is not sb:
                sa |= sb
                naive.remove(sb)

        for a, b in unions:
            dsu.union(a, b)
            naive_union(a, b)

        assert dsu.set_count == len(naive)
        assert sorted(dsu.component_sizes()) == sorted(len(s) for s in naive)
        elements = [x for s in naive for x in s]
        for x in elements:
            for y in elements:
                expected = any(x in s and y in s for s in naive)
                assert dsu.connected(x, y) == expected


class TestEdgeComponentSets:
    def test_initial_singletons(self):
        m = EdgeComponentSets([1, 2, 3])
        assert m.component_count() == 3
        assert m.score(tau=1) == 3
        assert m.score(tau=2) == 0

    def test_score_counts_large_components(self):
        m = EdgeComponentSets(range(5))
        m.union(0, 1)
        m.union(2, 3)
        m.union(3, 4)
        # components: {0,1}, {2,3,4}
        assert m.score(1) == 2
        assert m.score(2) == 2
        assert m.score(3) == 1
        assert m.score(4) == 0

    def test_score_rejects_bad_tau(self):
        m = EdgeComponentSets([1])
        with pytest.raises(ValueError):
            m.score(0)

    def test_size_histogram(self):
        m = EdgeComponentSets(range(4))
        m.union(0, 1)
        assert m.size_histogram() == {1: 2, 2: 1}

    def test_discard_singleton(self):
        m = EdgeComponentSets([1, 2, 3])
        m.union(1, 2)
        assert not m.discard_singleton(1)  # size-2 component, refuse
        assert m.discard_singleton(3)
        assert 3 not in m
        assert not m.discard_singleton(3)  # already gone
        assert m.component_count() == 1

    def test_component_of(self):
        m = EdgeComponentSets(range(4))
        m.union(0, 1)
        m.union(1, 2)
        assert sorted(m.component_of(0)) == [0, 1, 2]
        assert m.component_of(3) == [3]

    def test_replace_members(self):
        m = EdgeComponentSets(range(3))
        m.union(0, 1)
        m.replace_members([5, 6, 7, 8], [(5, 6), (7, 8)])
        assert sorted(m.members()) == [5, 6, 7, 8]
        assert m.component_count() == 2

    def test_rebuild_component_splits(self):
        m = EdgeComponentSets(range(5))
        for a, b in [(0, 1), (1, 2), (3, 4)]:
            m.union(a, b)
        # Rebuild {0,1,2}'s component keeping only edge (0, 1): splits off 2.
        m.rebuild_component(0, [(0, 1)])
        assert m.connected(0, 1)
        assert not m.connected(0, 2)
        assert m.connected(3, 4)
        assert sorted(m.component_sizes()) == [1, 2, 2]

    def test_rebuild_component_ignores_foreign_edges(self):
        m = EdgeComponentSets(range(4))
        m.union(0, 1)
        # Edge (0, 3) is outside the rebuilt component and must be ignored.
        m.rebuild_component(0, [(0, 1), (0, 3)])
        assert m.connected(0, 1)
        assert not m.connected(0, 3)

    def test_rebuild_component_missing_anchor_is_noop(self):
        m = EdgeComponentSets([1, 2])
        m.union(1, 2)
        m.rebuild_component(99, [])
        assert m.connected(1, 2)

    def test_copy_is_independent(self):
        m = EdgeComponentSets(range(3))
        m.union(0, 1)
        clone = m.copy()
        clone.union(1, 2)
        assert m.component_count() == 2
        assert clone.component_count() == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(3, 15),
        st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40),
        st.integers(1, 5),
    )
    def test_score_matches_bfs_on_random_partitions(self, n, edges, tau):
        """score(tau) agrees with explicitly counting component sizes."""
        m = EdgeComponentSets(range(n))
        adj = {i: set() for i in range(n)}
        for a, b in edges:
            if a < n and b < n and a != b:
                m.union(a, b)
                adj[a].add(b)
                adj[b].add(a)
        # BFS components from scratch.
        seen, sizes = set(), []
        for start in range(n):
            if start in seen:
                continue
            queue, comp = [start], set()
            seen.add(start)
            while queue:
                x = queue.pop()
                comp.add(x)
                for y in adj[x]:
                    if y not in seen:
                        seen.add(y)
                        queue.append(y)
            sizes.append(len(comp))
        assert sorted(m.component_sizes()) == sorted(sizes)
        assert m.score(tau) == sum(1 for s in sizes if s >= tau)
