"""Tests for the lazy max-heap backing the dequeue-twice framework."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import LazyMaxHeap


class TestLazyMaxHeap:
    def test_empty_pop_raises(self):
        heap = LazyMaxHeap()
        with pytest.raises(IndexError):
            heap.pop()

    def test_empty_peek_raises(self):
        with pytest.raises(IndexError):
            LazyMaxHeap().peek()

    def test_push_pop_max_order(self):
        heap = LazyMaxHeap()
        for item, prio in [("a", 3), ("b", 7), ("c", 5)]:
            heap.push(item, prio)
        assert heap.pop() == ("b", 7)
        assert heap.pop() == ("c", 5)
        assert heap.pop() == ("a", 3)

    def test_len_and_contains(self):
        heap = LazyMaxHeap()
        heap.push("x", 1)
        heap.push("y", 2)
        assert len(heap) == 2
        assert "x" in heap
        heap.pop()
        assert len(heap) == 1
        assert "y" not in heap

    def test_priority_update_supersedes(self):
        heap = LazyMaxHeap()
        heap.push("a", 10)
        heap.push("b", 5)
        heap.push("a", 1)  # decrease
        assert heap.pop() == ("b", 5)
        assert heap.pop() == ("a", 1)

    def test_priority_increase(self):
        heap = LazyMaxHeap()
        heap.push("a", 1)
        heap.push("b", 5)
        heap.push("a", 10)
        assert heap.pop() == ("a", 10)

    def test_priority_of(self):
        heap = LazyMaxHeap()
        assert heap.priority_of("a") is None
        heap.push("a", 4)
        assert heap.priority_of("a") == 4

    def test_tie_break_is_deterministic(self):
        heap = LazyMaxHeap()
        heap.push((2, 3), 5)
        heap.push((1, 2), 5)
        heap.push((1, 9), 5)
        assert heap.pop()[0] == (1, 2)
        assert heap.pop()[0] == (1, 9)
        assert heap.pop()[0] == (2, 3)

    def test_peek_does_not_remove(self):
        heap = LazyMaxHeap()
        heap.push("a", 1)
        assert heap.peek() == ("a", 1)
        assert len(heap) == 1

    def test_discard(self):
        heap = LazyMaxHeap()
        heap.push("a", 1)
        heap.push("b", 2)
        assert heap.discard("b")
        assert not heap.discard("b")
        assert heap.pop() == ("a", 1)
        assert not heap

    def test_stale_skips_counted(self):
        heap = LazyMaxHeap()
        heap.push("a", 5)
        heap.push("a", 1)
        heap.pop()
        assert heap.stale_skips >= 1

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(-50, 50)),
            min_size=1,
            max_size=80,
        )
    )
    def test_drains_in_sorted_order(self, pushes):
        """After arbitrary pushes/updates, draining yields sorted output."""
        heap = LazyMaxHeap()
        latest = {}
        for item, prio in pushes:
            heap.push(item, prio)
            latest[item] = prio
        drained = []
        while heap:
            drained.append(heap.pop())
        assert len(drained) == len(latest)
        assert {i: p for i, p in drained} == latest
        prios = [p for _, p in drained]
        assert prios == sorted(prios, reverse=True)


class TestRepushSamePriority:
    """Algorithm 1 re-pushes an edge with its exact score; when the bound
    already *equals* the exact score the re-push duplicates the heap entry
    and the duplicate must be skipped as stale, not double-delivered."""

    def test_duplicate_entry_is_stale_not_double_delivered(self):
        heap = LazyMaxHeap()
        heap.push(("a", "b"), 5)
        heap.push(("a", "b"), 5)  # bound == exact score
        assert len(heap) == 1
        assert heap.pop() == (("a", "b"), 5)
        assert not heap
        with pytest.raises(IndexError):
            heap.pop()  # the leftover duplicate is skipped, never returned
        assert heap.stale_skips == 1

    def test_stale_accounting_across_many_repushes(self):
        heap = LazyMaxHeap()
        edges = [(0, 1), (0, 2), (1, 2)]
        for edge in edges:
            heap.push(edge, 3)
        for edge in edges:
            heap.push(edge, 3)  # exact == bound for every edge
        assert len(heap) == 3
        drained = []
        while heap:
            drained.append(heap.pop())
        assert drained == [((0, 1), 3), ((0, 2), 3), ((1, 2), 3)]
        heap.push((9, 9), 1)
        assert heap.pop() == ((9, 9), 1)
        assert heap.stale_skips == 3  # exactly the three duplicates

    def test_tied_priorities_pop_in_ascending_edge_order(self):
        heap = LazyMaxHeap()
        edges = [(3, 4), (0, 9), (1, 2), (0, 2)]
        for edge in edges:
            heap.push(edge, 7)
            heap.push(edge, 7)
        assert [heap.pop()[0] for _ in range(len(edges))] == sorted(edges)
