"""Stateful (model-based) hypothesis tests for the core data structures.

Each machine drives the structure under test through arbitrary operation
sequences while mirroring them on a trivially-correct Python model, then
checks full agreement after every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.structures import DisjointSet, LazyMaxHeap, OrderStatTreap


class TreapMachine(RuleBasedStateMachine):
    """OrderStatTreap vs a plain Python set."""

    def __init__(self):
        super().__init__()
        self.treap = OrderStatTreap()
        self.model = set()

    @rule(key=st.integers(-50, 50))
    def insert(self, key):
        if key in self.model:
            try:
                self.treap.insert(key)
                raise AssertionError("duplicate insert must raise")
            except KeyError:
                pass
        else:
            self.treap.insert(key)
            self.model.add(key)

    @rule(key=st.integers(-50, 50))
    def discard(self, key):
        assert self.treap.discard(key) == (key in self.model)
        self.model.discard(key)

    @rule(index=st.integers(0, 120))
    def kth(self, index):
        ordered = sorted(self.model)
        if index < len(ordered):
            assert self.treap.kth(index) == ordered[index]

    @rule(k=st.integers(0, 30))
    def smallest(self, k):
        assert self.treap.smallest(k) == sorted(self.model)[:k]

    @invariant()
    def matches_model(self):
        assert len(self.treap) == len(self.model)
        assert list(self.treap) == sorted(self.model)
        self.treap.check_invariants()


class DisjointSetMachine(RuleBasedStateMachine):
    """DisjointSet vs a list-of-sets model."""

    def __init__(self):
        super().__init__()
        self.dsu = DisjointSet()
        self.model = []  # list of sets

    def _model_find(self, x):
        return next((s for s in self.model if x in s), None)

    @rule(x=st.integers(0, 25))
    def add(self, x):
        self.dsu.add(x)
        if self._model_find(x) is None:
            self.model.append({x})

    @rule(x=st.integers(0, 25), y=st.integers(0, 25))
    def union(self, x, y):
        self.dsu.union(x, y)
        sx = self._model_find(x)
        if sx is None:
            sx = {x}
            self.model.append(sx)
        sy = self._model_find(y)
        if sy is None:
            if y not in sx:
                sy = {y}
                self.model.append(sy)
            else:
                sy = sx
        if sx is not sy:
            sx |= sy
            self.model.remove(sy)

    @invariant()
    def matches_model(self):
        assert self.dsu.set_count == len(self.model)
        assert sorted(self.dsu.component_sizes()) == sorted(
            len(s) for s in self.model
        )
        for s in self.model:
            members = sorted(s)
            for a, b in zip(members, members[1:]):
                assert self.dsu.connected(a, b)


class HeapMachine(RuleBasedStateMachine):
    """LazyMaxHeap vs a dict model."""

    def __init__(self):
        super().__init__()
        self.heap = LazyMaxHeap()
        self.model = {}

    @rule(item=st.integers(0, 15), priority=st.integers(-30, 30))
    def push(self, item, priority):
        self.heap.push(item, priority)
        self.model[item] = priority

    @rule()
    def pop(self):
        if not self.model:
            return
        item, priority = self.heap.pop()
        best = max(self.model.values())
        assert priority == best
        # Deterministic tie-break: the smallest item among the best.
        assert item == min(i for i, p in self.model.items() if p == best)
        del self.model[item]

    @rule(item=st.integers(0, 15))
    def discard(self, item):
        assert self.heap.discard(item) == (item in self.model)
        self.model.pop(item, None)

    @invariant()
    def matches_model(self):
        assert len(self.heap) == len(self.model)
        for item, priority in self.model.items():
            assert self.heap.priority_of(item) == priority


TestTreapStateful = TreapMachine.TestCase
TestDisjointSetStateful = DisjointSetMachine.TestCase
TestHeapStateful = HeapMachine.TestCase

for case in (TestTreapStateful, TestDisjointSetStateful, TestHeapStateful):
    case.settings = settings(max_examples=40, stateful_step_count=30,
                             deadline=None)
