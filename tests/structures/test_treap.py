"""Tests for the order-statistic treap backing the ESDIndex sorted lists."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import OrderStatTreap


class TestOrderStatTreapBasics:
    def test_empty(self):
        t = OrderStatTreap()
        assert len(t) == 0
        assert not t
        assert list(t) == []
        assert t.smallest(5) == []

    def test_insert_and_iterate_sorted(self):
        t = OrderStatTreap([5, 1, 4, 2, 3])
        assert list(t) == [1, 2, 3, 4, 5]
        assert len(t) == 5

    def test_duplicate_insert_raises(self):
        t = OrderStatTreap([1])
        with pytest.raises(KeyError):
            t.insert(1)

    def test_contains(self):
        t = OrderStatTreap([10, 20])
        assert 10 in t
        assert 15 not in t

    def test_remove(self):
        t = OrderStatTreap([1, 2, 3])
        t.remove(2)
        assert list(t) == [1, 3]
        with pytest.raises(KeyError):
            t.remove(2)

    def test_discard(self):
        t = OrderStatTreap([1])
        assert t.discard(1)
        assert not t.discard(1)

    def test_kth(self):
        t = OrderStatTreap([30, 10, 20])
        assert t.kth(0) == 10
        assert t.kth(1) == 20
        assert t.kth(2) == 30
        with pytest.raises(IndexError):
            t.kth(3)
        with pytest.raises(IndexError):
            t.kth(-1)

    def test_rank(self):
        t = OrderStatTreap([10, 20, 30])
        assert t.rank(10) == 0
        assert t.rank(25) == 2
        assert t.rank(5) == 0
        assert t.rank(99) == 3

    def test_smallest_prefix(self):
        t = OrderStatTreap(range(10))
        assert t.smallest(3) == [0, 1, 2]
        assert t.smallest(100) == list(range(10))
        assert t.smallest(0) == []

    def test_min_max(self):
        t = OrderStatTreap([7, 3, 9])
        assert t.min() == 3
        assert t.max() == 9
        with pytest.raises(IndexError):
            OrderStatTreap().min()
        with pytest.raises(IndexError):
            OrderStatTreap().max()

    def test_clear(self):
        t = OrderStatTreap([1, 2])
        t.clear()
        assert len(t) == 0

    def test_tuple_keys_sorted_lexicographically(self):
        """ESDIndex keys are (-score, edge); verify ordering semantics."""
        t = OrderStatTreap()
        t.insert((-2, (1, 5)))
        t.insert((-3, (9, 9)))
        t.insert((-2, (0, 7)))
        assert t.smallest(2) == [(-3, (9, 9)), (-2, (0, 7))]

    def test_deterministic_shape(self):
        a = OrderStatTreap(range(50), seed=7)
        b = OrderStatTreap(range(50), seed=7)
        assert list(a) == list(b)
        a.check_invariants()


class TestTreapProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-100, 100), unique=True, max_size=120))
    def test_matches_sorted_list(self, keys):
        t = OrderStatTreap(keys)
        expected = sorted(keys)
        assert list(t) == expected
        for i, key in enumerate(expected):
            assert t.kth(i) == key
            assert t.rank(key) == i
        t.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 40)),
            max_size=120,
        )
    )
    def test_random_insert_delete_script(self, ops):
        """Arbitrary insert/delete scripts keep the treap consistent."""
        t = OrderStatTreap()
        reference = set()
        for op, key in ops:
            if op == "ins":
                if key in reference:
                    with pytest.raises(KeyError):
                        t.insert(key)
                else:
                    t.insert(key)
                    reference.add(key)
            else:
                assert t.discard(key) == (key in reference)
                reference.discard(key)
        assert list(t) == sorted(reference)
        t.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 200), unique=True, min_size=1, max_size=80),
           st.integers(0, 90))
    def test_smallest_agrees_with_slice(self, keys, k):
        t = OrderStatTreap(keys)
        assert t.smallest(k) == sorted(keys)[:k]
