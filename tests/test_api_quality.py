"""API quality gates: exports exist, are documented, and stay consistent."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.graph",
    "repro.cliques",
    "repro.structures",
    "repro.analytics",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} exported but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every exported function/class carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{package}: missing docstrings: {undocumented}"


def test_public_methods_documented():
    """Public methods of the flagship classes carry docstrings."""
    from repro import DynamicESDIndex, ESDIndex, Graph
    from repro.core import TopKMonitor, VertexESDIndex
    from repro.structures import (
        DisjointSet,
        EdgeComponentSets,
        LazyMaxHeap,
        OrderStatTreap,
    )

    undocumented = []
    for cls in (Graph, ESDIndex, DynamicESDIndex, VertexESDIndex,
                TopKMonitor, DisjointSet, EdgeComponentSets, LazyMaxHeap,
                OrderStatTreap):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) and not inspect.getdoc(member):
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_no_export_name_collisions():
    """Top-level re-exports must resolve to a single object each."""
    import repro
    import repro.core
    import repro.graph

    for name in repro.__all__:
        if name.startswith("__"):
            continue
        owners = []
        for module in (repro.core, repro.graph):
            if name in getattr(module, "__all__", ()):
                owners.append(getattr(module, name))
        if len(owners) == 2:
            assert owners[0] is owners[1], f"conflicting export: {name}"


def test_version_consistent_with_pyproject():
    import re
    from pathlib import Path

    import repro

    pyproject = (Path(repro.__file__).parents[2] / "pyproject.toml").read_text()
    match = re.search(r'^version = "(.+)"', pyproject, flags=re.M)
    assert match
    assert repro.__version__ == match.group(1)
