"""Tests for the ``esd`` command-line interface."""

import pytest

from repro.cli import main
from repro.graph import Graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g = Graph([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3), (3, 4), (0, 4)])
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return str(path)


class TestStats:
    def test_on_file(self, graph_file, capsys):
        assert main(["stats", "--graph", graph_file]) == 0
        out = capsys.readouterr().out
        assert "n                5" in out
        assert "m                8" in out
        assert "degeneracy" in out

    def test_on_dataset(self, capsys):
        assert main(["stats", "--dataset", "youtube", "--scale", "0.1"]) == 0
        assert "d_max" in capsys.readouterr().out

    def test_missing_source_errors(self):
        with pytest.raises(SystemExit):
            main(["stats"])


class TestTopk:
    def test_online(self, graph_file, capsys):
        assert main(["topk", "--graph", graph_file, "-k", "3", "--tau", "1"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 3
        assert all(len(l.split("\t")) == 3 for l in lines)

    def test_exact_matches_online(self, graph_file, capsys):
        main(["topk", "--graph", graph_file, "-k", "3", "--method", "online"])
        online = capsys.readouterr().out
        main(["topk", "--graph", graph_file, "-k", "3", "--method", "exact"])
        exact = capsys.readouterr().out
        assert online == exact

    def test_min_degree_bound(self, graph_file, capsys):
        assert main(
            ["topk", "--graph", graph_file, "--bound", "min-degree"]
        ) == 0

    def test_ordering_method_matches_online_scores(self, graph_file, capsys):
        main(["topk", "--graph", graph_file, "-k", "3", "--method", "online"])
        online = capsys.readouterr().out
        main(["topk", "--graph", graph_file, "-k", "3", "--method", "ordering"])
        ordering = capsys.readouterr().out
        online_scores = [line.split("\t")[2] for line in online.splitlines() if line]
        ordering_scores = [
            line.split("\t")[2] for line in ordering.splitlines() if line
        ]
        assert online_scores == ordering_scores

    def test_vertex_target(self, graph_file, capsys):
        assert main(
            ["topk", "--graph", graph_file, "--target", "vertex", "-k", "2"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 2
        assert all(len(l.split("\t")) == 2 for l in lines)


class TestIndexRoundTrip:
    def test_build_then_query(self, graph_file, tmp_path, capsys):
        index_path = str(tmp_path / "index.json")
        assert main(["build-index", "--graph", graph_file, "-o", index_path]) == 0
        built = capsys.readouterr().out
        assert "index built" in built
        assert main(["query", "--index", index_path, "-k", "2", "--tau", "1"]) == 0
        out = capsys.readouterr().out
        assert len([l for l in out.splitlines() if l]) == 2

    def test_query_matches_exact(self, graph_file, tmp_path, capsys):
        index_path = str(tmp_path / "index.json")
        main(["build-index", "--graph", graph_file, "-o", index_path])
        capsys.readouterr()
        main(["query", "--index", index_path, "-k", "5", "--tau", "2"])
        query_out = capsys.readouterr().out
        main(["topk", "--graph", graph_file, "-k", "5", "--tau", "2",
              "--method", "exact"])
        exact_out = capsys.readouterr().out
        # Index omits zero-score edges; every line it prints must appear
        # in the exact output, in order.
        q_lines = query_out.splitlines()
        e_lines = exact_out.splitlines()
        assert q_lines == e_lines[: len(q_lines)]


class TestServe:
    def test_parser_wires_serve_with_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--dataset", "dblp", "--port", "0"]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.max_pending == 64
        assert args.queue_timeout == 2.0
        assert args.batch_window == 0.002
        assert args.cache_size == 1024

    def test_bench_accepts_service(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "service"])
        assert args.experiment == "service"

    def test_parser_wires_observability_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--dataset", "dblp", "--port", "0",
                "--slow-query-ms", "50",
                "--check-invariants-every", "25",
                "--trace", "/tmp/spans.jsonl",
            ]
        )
        assert args.slow_query_ms == 50.0
        assert args.slow_log_capacity == 128
        assert args.check_invariants_every == 25
        assert args.trace == "/tmp/spans.jsonl"


class TestProfile:
    def test_profile_prints_stage_breakdown(self, graph_file, capsys):
        assert main(
            ["profile", "--graph", graph_file, "-k", "3",
             "--repeat", "2", "--updates", "2"]
        ) == 0
        out = capsys.readouterr().out
        for stage in ("build", "query", "update", "persist"):
            assert stage in out
        assert "core.edges_rescored" in out
        assert "online.bound_evaluations" in out

    def test_profile_trace_out_writes_jsonl(self, graph_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "spans.jsonl"
        assert main(
            ["profile", "--graph", graph_file, "--repeat", "1",
             "--updates", "1", "--trace-out", str(trace_path)]
        ) == 0
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert records, "no spans written"
        names = {r["name"] for r in records}
        assert {"profile.build", "profile.query", "index.topk"} <= names

    def test_profile_leaves_global_tracer_disabled(self, graph_file, capsys):
        from repro.obs.trace import TRACER

        assert main(["profile", "--graph", graph_file, "--repeat", "1"]) == 0
        assert TRACER.enabled is False


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "youtube" in out

    def test_fig13(self, capsys):
        assert main(["bench", "fig13"]) == 0
        assert "bank" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])
