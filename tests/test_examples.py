"""Smoke tests for the example scripts.

The two fast examples run end-to-end; the longer simulations are
compile-checked and their helper functions exercised directly.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


@pytest.mark.parametrize(
    "name",
    ["quickstart", "word_polysemy", "collaboration_bridges",
     "dynamic_stream", "viral_seeding", "monitoring", "friend_suggestion"],
)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / f"{name}.py"), doraise=True)


def _run(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / f"{name}.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_output():
    out = _run("quickstart")
    assert "score(f, g) at tau=1: 2" in out
    assert "H(3) appeared" in out


def test_word_polysemy_output():
    out = _run("word_polysemy")
    assert "(bank, money)" in out
    assert "6 distinct semantic contexts" in out


def test_seed_pairs_helper():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "viral_seeding", EXAMPLES / "viral_seeding.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    ranked = [((1, 2), 9), ((2, 3), 8), ((4, 5), 7)]
    assert module.seed_pairs(ranked, 3) == [1, 2, 3]
    assert module.seed_pairs(ranked, 10) == [1, 2, 3, 4, 5]
    assert module.communities_reached({1: 0, 2: 0, 3: 1}, {1, 2, 3}, 2) == 1
