"""Loose performance-regression guards.

These bound the asymptotically-important operations with generous
margins (10-50x headroom on this container), so an accidental complexity
regression -- e.g. a linear scan slipping into the index query path --
fails the unit suite rather than only showing up in benchmark drift.
"""

import time

import pytest

from repro.core import DynamicESDIndex, build_index_fast, topk_online
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def pokec():
    return load_dataset("pokec", scale=0.5)


@pytest.fixture(scope="module")
def pokec_index(pokec):
    return build_index_fast(pokec)


def best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_index_query_is_sublinear(pokec_index):
    """A top-100 query must not scan the whole index (sub-10ms here)."""
    assert best_of(lambda: pokec_index.topk(100, 3), repeats=5) < 0.1


def test_index_build_scales(pokec):
    """Construction stays within an order of magnitude of its usual time."""
    assert best_of(lambda: build_index_fast(pokec), repeats=2) < 5.0


def test_online_search_prunes(pokec):
    """OnlineBFS+ must stay far below a full per-edge BFS scan."""
    assert best_of(lambda: topk_online(pokec, 10, 3), repeats=2) < 2.0


def test_maintenance_is_local(pokec):
    """A single update must be millisecond-scale, not rebuild-scale."""
    dyn = DynamicESDIndex(pokec)
    edge = dyn.graph.edge_list()[len(dyn.graph.edge_list()) // 2]

    def roundtrip():
        dyn.delete_edge(*edge)
        dyn.insert_edge(*edge)

    assert best_of(roundtrip, repeats=3) < 0.5
